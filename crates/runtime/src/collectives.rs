//! Functional ring collectives over the message fabric.
//!
//! These are NCCL's ring algorithms with real data movement: the same
//! chunk ordering (rank *i* owns chunk *i* after a ReduceScatter — the
//! property the paper's overlapped MatMul schedules against, §5.3),
//! with reductions accumulated in `f32` like the generated mixed-
//! precision kernels.
//!
//! Data movement is minimal by construction: chunks travel as
//! copy-on-write buffer handles (a send copies nothing), reductions
//! fold the incoming chunk into the local one in place, and the only
//! materializations are the one detach-copy per chunk the first
//! reduction performs plus the final output assembly — which is what
//! the [`BytesLedger`](crate::BytesLedger) suite asserts.

use coconet_compress::WireFormat;
use coconet_tensor::{kernels, DType, ReduceOp, Tensor, F16};
use coconet_trace as trace;
use coconet_trace::metrics::Counter;
use coconet_trace::EventKind;

use crate::RankComm;

/// The most lanes a collective will stripe across. The streaming
/// executor's wire tags reserve six bits for the lane index, so wider
/// requests clamp here (the autotuner's grid tops out at 64 as well).
pub const MAX_CHANNELS: usize = 64;

/// Clamps a requested channel count into the executable `1..=64` range.
pub fn clamp_channels(channels: usize) -> usize {
    channels.clamp(1, MAX_CHANNELS)
}

/// Sends an (already wire-encoded) payload as `channels` contiguous
/// lane stripes — zero-copy views, so the byte total is exactly the
/// single-message send's. `channels <= 1` sends the payload whole,
/// byte- and allocation-identical to a plain [`RankComm::send`].
pub(crate) fn send_striped(comm: &RankComm, dst: usize, payload: Tensor, channels: usize) {
    if channels <= 1 {
        comm.send(dst, payload);
        return;
    }
    let n = payload.numel();
    for s in 0..channels {
        let (off, len) = chunk_range(n, channels, s);
        let stripe = if len == 0 {
            payload.slice_flat(0, 0).expect("empty view")
        } else {
            payload.slice_flat(off, len).expect("in range")
        };
        comm.send(dst, stripe);
    }
}

/// Receives the `channels` lane stripes of one logical payload (in
/// lane order — the fabric is per-source FIFO) and reassembles them
/// into a contiguous tensor. The inverse of [`send_striped`];
/// `channels <= 1` is a plain [`RankComm::recv`].
pub(crate) fn recv_striped(comm: &RankComm, src: usize, channels: usize) -> Tensor {
    if channels <= 1 {
        return comm.recv(src);
    }
    let stripes: Vec<Tensor> = (0..channels).map(|_| comm.recv(src)).collect();
    let total: usize = stripes.iter().map(Tensor::numel).sum();
    let mut asm = Tensor::zeros([total], stripes[0].dtype());
    let mut off = 0usize;
    for s in &stripes {
        if s.numel() > 0 {
            asm.write_flat(off, s).expect("stripes tile the payload");
            off += s.numel();
        }
    }
    asm
}

/// Encodes a tensor for the wire: a handle copy for the dense wire, an
/// FP16 rounding for [`WireFormat::Fp16`]. The top-k format never
/// reaches the dense collectives' send path (its AllReduce is the
/// sparse exchange; everything else resolves to dense), so it encodes
/// as dense here.
pub(crate) fn wire_encode(t: &Tensor, wire: WireFormat) -> Tensor {
    match wire {
        WireFormat::Fp16 => {
            let _codec = trace::span(EventKind::Codec, "fp16:encode", t.numel() as u64, 0);
            let out = t.cast(DType::F16);
            trace::metrics::add_counter(Counter::CodecBytes, out.size_bytes() as u64);
            out
        }
        WireFormat::Dense | WireFormat::TopK { .. } => t.clone(),
    }
}

/// Decodes a received wire payload back to the collective's working
/// element type (a no-op on the dense wire, a widening for FP16).
pub(crate) fn wire_decode(t: Tensor, wire: WireFormat, dtype: DType) -> Tensor {
    match wire {
        WireFormat::Fp16 => {
            let _codec = trace::span(EventKind::Codec, "fp16:decode", t.numel() as u64, 0);
            trace::metrics::add_counter(Counter::CodecBytes, t.size_bytes() as u64);
            t.cast(dtype)
        }
        WireFormat::Dense | WireFormat::TopK { .. } => t,
    }
}

/// A group of consecutive ranks participating in a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Group {
    /// First (global) rank of the group.
    pub start: usize,
    /// Number of ranks.
    pub size: usize,
}

impl Group {
    /// The position of a global rank within the group.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not a member.
    pub fn position(&self, rank: usize) -> usize {
        assert!(
            rank >= self.start && rank < self.start + self.size,
            "rank {rank} not in group [{}, {})",
            self.start,
            self.start + self.size
        );
        rank - self.start
    }

    /// The global rank at a group position.
    pub fn rank_at(&self, pos: usize) -> usize {
        self.start + pos % self.size
    }

    /// The ring successor of `rank`.
    pub fn next(&self, rank: usize) -> usize {
        self.rank_at(self.position(rank) + 1)
    }

    /// The ring predecessor of `rank`.
    pub fn prev(&self, rank: usize) -> usize {
        self.rank_at(self.position(rank) + self.size - 1)
    }
}

/// The flat element range of chunk `c` when `numel` elements are split
/// into `k` ring chunks (uneven remainders go to the leading chunks).
pub fn chunk_range(numel: usize, k: usize, c: usize) -> (usize, usize) {
    let base = numel / k;
    let rem = numel % k;
    let start = c * base + c.min(rem);
    let len = base + usize::from(c < rem);
    (start, len)
}

/// Ring ReduceScatter: every rank contributes its full local tensor;
/// rank at group position `i` returns with the fully reduced chunk `i`
/// (flattened element range `chunk_range(numel, k, i)`).
///
/// The local contribution is held as `k` zero-copy chunk views; each
/// chunk detaches (one chunk-sized copy-on-write materialization) the
/// first — and only — time an incoming partial is reduced into it, so
/// the whole ReduceScatter copies `(k−1)/k` of the tensor once and
/// nothing else.
pub fn ring_reduce_scatter(comm: &RankComm, group: Group, input: &Tensor, op: ReduceOp) -> Tensor {
    ring_reduce_scatter_wire(comm, group, input, op, WireFormat::Dense)
}

/// [`ring_reduce_scatter`] with the payload encoded per `wire` on
/// every hop: under FP16 each partial sum is rounded to half precision
/// before it travels (the per-hop rounding a real FP16-wire collective
/// performs) and widened back before the fold, halving the bytes the
/// [`BytesLedger`](crate::BytesLedger) records. The dense wire is
/// byte- and allocation-identical to [`ring_reduce_scatter`].
pub fn ring_reduce_scatter_wire(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
) -> Tensor {
    let k = group.size;
    let me = group.position(comm.rank());
    let n = input.numel();
    if k == 1 {
        return input.slice_flat(0, n).expect("full range");
    }
    let _phase = trace::span(EventKind::CollectivePhase, "ring:rs", n as u64, k as u64);
    let dtype = input.dtype();
    let mut chunks: Vec<Tensor> = (0..k)
        .map(|c| {
            let (off, len) = chunk_range(n, k, c);
            input.slice_flat(off, len).expect("in range")
        })
        .collect();
    // Textbook ring RS shifted so position i ends owning chunk i: run
    // the schedule of a virtual position j = i - 1 (mod k).
    let j = (me + k - 1) % k;
    for step in 0..k - 1 {
        let send_c = (j + k - step % k) % k;
        let recv_c = (j + k - step - 1) % k;
        comm.send(group.next(comm.rank()), wire_encode(&chunks[send_c], wire));
        let incoming = wire_decode(comm.recv(group.prev(comm.rank())), wire, dtype);
        chunks[recv_c]
            .reduce_assign(&incoming, op)
            .expect("ring chunks agree on geometry");
    }
    chunks.swap_remove(me)
}

/// Ring AllGather: every rank contributes its chunk (position `i`
/// contributes chunk `i`); returns the flat concatenation of all
/// chunks, in position order. Every hop forwards a buffer handle —
/// the gather allocates nothing.
pub fn ring_all_gather(comm: &RankComm, group: Group, chunk: &Tensor) -> Vec<Tensor> {
    ring_all_gather_wire(comm, group, chunk, WireFormat::Dense)
}

/// [`ring_all_gather`] with the payload encoded per `wire`: the owned
/// chunk is encoded once on entry, every hop forwards the *encoded*
/// buffer handle (no re-rounding, no copies), and every chunk is
/// decoded back to the input's element type at the end. The dense wire
/// is byte- and allocation-identical to [`ring_all_gather`].
pub fn ring_all_gather_wire(
    comm: &RankComm,
    group: Group,
    chunk: &Tensor,
    wire: WireFormat,
) -> Vec<Tensor> {
    let k = group.size;
    let me = group.position(comm.rank());
    let dtype = chunk.dtype();
    if k == 1 {
        return vec![chunk.clone()];
    }
    let _phase = trace::span(
        EventKind::CollectivePhase,
        "ring:ag",
        chunk.numel() as u64,
        k as u64,
    );
    let mut chunks: Vec<Option<Tensor>> = vec![None; k];
    // On the dense wire a handle copy, under FP16 the one encode this
    // rank's chunk ever gets.
    chunks[me] = Some(wire_encode(chunk, wire));
    for step in 0..k - 1 {
        let send_c = (me + k - step % k) % k;
        let recv_c = (me + k - step - 1) % k;
        let outgoing = chunks[send_c].clone().expect("chunk present by schedule");
        comm.send(group.next(comm.rank()), outgoing);
        let incoming = comm.recv(group.prev(comm.rank()));
        chunks[recv_c] = Some(incoming);
    }
    chunks
        .into_iter()
        .map(|c| wire_decode(c.expect("all chunks gathered"), wire, dtype))
        .collect()
}

/// Ring AllReduce = ReduceScatter + AllGather over flat chunks;
/// returns the fully reduced tensor with the input's shape.
pub fn ring_all_reduce(comm: &RankComm, group: Group, input: &Tensor, op: ReduceOp) -> Tensor {
    ring_all_reduce_wire(comm, group, input, op, WireFormat::Dense)
}

/// [`ring_all_reduce`] with every hop of both phases encoded per
/// `wire` — under FP16 the collective moves exactly half the dense
/// bytes on F32 payloads.
pub fn ring_all_reduce_wire(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
) -> Tensor {
    let my_chunk = ring_reduce_scatter_wire(comm, group, input, op, wire);
    let chunks = ring_all_gather_wire(comm, group, &my_chunk, wire);
    let mut out = Tensor::zeros(input.shape().clone(), input.dtype());
    let mut off = 0usize;
    for c in chunks {
        out.write_flat(off, &c).expect("chunks tile the tensor");
        off += c.numel();
    }
    out
}

/// Element-type plumbing for the striped ring engine: the two working
/// dtypes share one generic data path, each monomorphized over its
/// fused out-of-place reduce kernel.
trait StripeElem: Copy + Send + Sync + 'static {
    /// The additive-identity fill for freshly allocated output vectors
    /// (every element is overwritten before it is read).
    const ZERO: Self;
    /// The contiguous storage slice of a tensor of this element type.
    fn slice(t: &Tensor) -> &[Self];
    /// `dst[i] = op(a[i], b[i])` through the kernel engine.
    fn reduce_out(a: &[Self], b: &[Self], dst: &mut [Self], op: ReduceOp);
    /// Adopts an owned vector as a tensor without a copy.
    fn tensor_from(shape: coconet_tensor::Shape, data: Vec<Self>) -> Tensor;
}

impl StripeElem for f32 {
    const ZERO: f32 = 0.0;
    fn slice(t: &Tensor) -> &[f32] {
        t.as_f32_slice().expect("working dtype is F32")
    }
    fn reduce_out(a: &[f32], b: &[f32], dst: &mut [f32], op: ReduceOp) {
        kernels::reduce_f32_out(a, b, dst, op);
    }
    fn tensor_from(shape: coconet_tensor::Shape, data: Vec<f32>) -> Tensor {
        Tensor::from_f32_vec(shape, DType::F32, data).expect("length matches shape")
    }
}

impl StripeElem for F16 {
    const ZERO: F16 = F16::ZERO;
    fn slice(t: &Tensor) -> &[F16] {
        t.as_f16_slice().expect("working dtype is F16")
    }
    fn reduce_out(a: &[F16], b: &[F16], dst: &mut [F16], op: ReduceOp) {
        kernels::reduce_f16_out(a, b, dst, op);
    }
    fn tensor_from(shape: coconet_tensor::Shape, data: Vec<F16>) -> Tensor {
        Tensor::from_f16_vec(shape, data).expect("length matches shape")
    }
}

/// The striped ReduceScatter phase: every hop's chunk travels as
/// `channels` lane stripes (lane `s` carries the sub-range
/// `chunk_range(chunk_len, channels, s)` of *every* chunk, so stripe
/// bytes partition each hop's payload exactly), and every fold is a
/// fused out-of-place kernel writing a fresh owned stripe — no
/// copy-on-write detaches anywhere. Returns the fully reduced stripes
/// of chunk `me`, in lane order. Bit-identical to the single-lane
/// schedule: each element sees the same fold sequence, only the
/// message framing changes.
fn striped_rs_phase<E: StripeElem>(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
    channels: usize,
) -> Vec<Tensor> {
    let k = group.size;
    let me = group.position(comm.rank());
    let n = input.numel();
    let dtype = input.dtype();
    let next = group.next(comm.rank());
    let prev = group.prev(comm.rank());

    let _phase = trace::span(
        EventKind::CollectivePhase,
        "ring:rs-striped",
        n as u64,
        channels as u64,
    );
    let j = (me + k - 1) % k;
    // The folded stripes of the chunk received last step — next step's
    // outgoing payload.
    let mut carry: Vec<Tensor> = Vec::new();
    let mut own: Vec<Tensor> = Vec::new();
    for step in 0..k - 1 {
        let send_c = (j + k - step % k) % k;
        let recv_c = (j + k - step - 1) % k;
        if step == 0 {
            // Pristine input stripes travel as zero-copy views.
            let (c_off, c_len) = chunk_range(n, k, send_c);
            for s in 0..channels {
                let (s_off, s_len) = chunk_range(c_len, channels, s);
                let stripe = input.slice_flat(c_off + s_off, s_len).expect("in range");
                comm.send(next, wire_encode(&stripe, wire));
            }
        } else {
            for stripe in carry.drain(..) {
                comm.send(next, wire_encode(&stripe, wire));
            }
        }
        let (r_off, r_len) = chunk_range(n, k, recv_c);
        let mut folded: Vec<Tensor> = Vec::with_capacity(channels);
        for s in 0..channels {
            let (s_off, s_len) = chunk_range(r_len, channels, s);
            let incoming = wire_decode(comm.recv(prev), wire, dtype);
            let local = input.slice_flat(r_off + s_off, s_len).expect("in range");
            let mut out = vec![E::ZERO; s_len];
            E::reduce_out(E::slice(&local), E::slice(&incoming), &mut out, op);
            folded.push(E::tensor_from(coconet_tensor::Shape::from([s_len]), out));
        }
        if recv_c == me {
            own = folded;
        } else {
            carry = folded;
        }
    }
    own
}

/// [`ring_reduce_scatter_wire`] executed as `channels` concurrent
/// lanes (see `striped_rs_phase` for the lane geometry). `channels
/// <= 1` (or a single-rank group) runs the unmodified single-lane
/// path. Results are bit-identical at every width and the per-rank
/// ledger byte totals are unchanged — stripe sums partition each
/// hop's payload.
pub fn ring_reduce_scatter_wire_striped(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
    channels: usize,
) -> Tensor {
    let channels = clamp_channels(channels);
    if channels == 1 || group.size == 1 {
        return ring_reduce_scatter_wire(comm, group, input, op, wire);
    }
    let own = match input.dtype() {
        DType::F32 => striped_rs_phase::<f32>(comm, group, input, op, wire, channels),
        DType::F16 => striped_rs_phase::<F16>(comm, group, input, op, wire, channels),
    };
    // Reassemble the lane stripes into the contiguous owned chunk.
    let me = group.position(comm.rank());
    let (_, me_len) = chunk_range(input.numel(), group.size, me);
    let mut chunk = Tensor::zeros([me_len], input.dtype());
    let mut off = 0usize;
    for stripe in own {
        chunk
            .write_flat(off, &stripe)
            .expect("stripes tile the chunk");
        off += stripe.numel();
    }
    chunk
}

/// [`ring_all_gather_wire`] executed as `channels` concurrent lanes:
/// the owned chunk is encoded once, every hop moves `channels` stripe
/// views of the encoded buffer (zero-copy, forwarding received stripe
/// handles untouched), and each gathered chunk reassembles from its
/// lane stripes at the end. `channels <= 1` (or a single-rank group)
/// runs the unmodified single-lane path.
pub fn ring_all_gather_wire_striped(
    comm: &RankComm,
    group: Group,
    chunk: &Tensor,
    wire: WireFormat,
    channels: usize,
) -> Vec<Tensor> {
    let channels = clamp_channels(channels);
    let k = group.size;
    if channels == 1 || k == 1 {
        return ring_all_gather_wire(comm, group, chunk, wire);
    }
    let me = group.position(comm.rank());
    let dtype = chunk.dtype();
    let next = group.next(comm.rank());
    let prev = group.prev(comm.rank());

    let _phase = trace::span(
        EventKind::CollectivePhase,
        "ring:ag-striped",
        chunk.numel() as u64,
        channels as u64,
    );
    let enc = wire_encode(chunk, wire);
    let enc_dtype = enc.dtype();
    let own_len = enc.numel();
    let own_stripes: Vec<Tensor> = (0..channels)
        .map(|s| {
            let (s_off, s_len) = chunk_range(own_len, channels, s);
            enc.slice_flat(s_off, s_len).expect("in range")
        })
        .collect();

    let mut gathered: Vec<Option<Tensor>> = vec![None; k];
    gathered[me] = Some(wire_decode(enc, wire, dtype));

    let mut fwd = own_stripes;
    for step in 0..k - 1 {
        let recv_c = (me + k - step - 1) % k;
        for stripe in fwd.drain(..) {
            comm.send(next, stripe);
        }
        let stripes: Vec<Tensor> = (0..channels).map(|_| comm.recv(prev)).collect();
        let r_len: usize = stripes.iter().map(Tensor::numel).sum();
        let mut asm = Tensor::zeros([r_len], enc_dtype);
        let mut off = 0usize;
        for s in &stripes {
            asm.write_flat(off, s).expect("stripes tile the chunk");
            off += s.numel();
        }
        gathered[recv_c] = Some(wire_decode(asm, wire, dtype));
        fwd = stripes;
    }
    gathered
        .into_iter()
        .map(|c| c.expect("all chunks gathered"))
        .collect()
}

/// [`ring_all_reduce_wire`] executed as `channels` concurrent lanes —
/// the measured multi-channel data plane. Beyond the lane framing,
/// the striped engine is cheaper per rank than the single-lane path
/// by construction: every ReduceScatter fold writes a fresh owned
/// stripe through the fused kernel (no copy-on-write detaches), and
/// the AllGather lands decoded stripes directly in the preallocated
/// output vector the result tensor then adopts without a copy (no
/// zero-fill-plus-assembly pass). Results are bit-identical to the
/// single-lane run at every width and the per-rank ledger byte totals
/// are unchanged; `channels <= 1` (or a single-rank group) runs the
/// unmodified single-lane path.
pub fn ring_all_reduce_wire_striped(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
    channels: usize,
) -> Tensor {
    let channels = clamp_channels(channels);
    if channels == 1 || group.size == 1 {
        return ring_all_reduce_wire(comm, group, input, op, wire);
    }
    match input.dtype() {
        DType::F32 => striped_ring_ar::<f32>(comm, group, input, op, wire, channels),
        DType::F16 => striped_ring_ar::<F16>(comm, group, input, op, wire, channels),
    }
}

fn striped_ring_ar<E: StripeElem>(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
    channels: usize,
) -> Tensor {
    let k = group.size;
    let me = group.position(comm.rank());
    let n = input.numel();
    let dtype = input.dtype();
    let next = group.next(comm.rank());
    let prev = group.prev(comm.rank());

    let own = striped_rs_phase::<E>(comm, group, input, op, wire, channels);

    // --- AllGather phase, gathering straight into the output ---
    let mut out_vec = vec![E::ZERO; n];
    // Encode the owned stripes once; the same encoded payloads serve
    // the sends and the own-chunk round-trip into the output (exactly
    // the single-lane encode-once / decode-all discipline, so FP16
    // wires round the own chunk identically).
    let enc_own: Vec<Tensor> = own.iter().map(|s| wire_encode(s, wire)).collect();
    let (me_off, me_len) = chunk_range(n, k, me);
    for (s, enc) in enc_own.iter().enumerate() {
        let (s_off, s_len) = chunk_range(me_len, channels, s);
        let dec = wire_decode(enc.clone(), wire, dtype);
        out_vec[me_off + s_off..me_off + s_off + s_len].copy_from_slice(E::slice(&dec));
    }

    let mut fwd = enc_own;
    for step in 0..k - 1 {
        let recv_c = (me + k - step - 1) % k;
        for stripe in fwd.drain(..) {
            comm.send(next, stripe);
        }
        let (r_off, r_len) = chunk_range(n, k, recv_c);
        let mut received: Vec<Tensor> = Vec::with_capacity(channels);
        for s in 0..channels {
            let (s_off, s_len) = chunk_range(r_len, channels, s);
            let enc = comm.recv(prev);
            let dec = wire_decode(enc.clone(), wire, dtype);
            out_vec[r_off + s_off..r_off + s_off + s_len].copy_from_slice(E::slice(&dec));
            received.push(enc);
        }
        fwd = received;
    }
    E::tensor_from(input.shape().clone(), out_vec)
}

/// Broadcast from the group-relative `root` position. The root fans
/// out one shared buffer handle per peer — the value itself is never
/// duplicated, no matter the group size.
pub fn broadcast(comm: &RankComm, group: Group, value: Option<&Tensor>, root: usize) -> Tensor {
    let me = group.position(comm.rank());
    if me == root {
        let v = value.expect("root must provide the value");
        for pos in 0..group.size {
            if pos != root {
                comm.send(group.rank_at(pos), v.clone());
            }
        }
        v.clone()
    } else {
        comm.recv(group.rank_at(root))
    }
}

/// Reduce to the group-relative `root` position; non-roots return their
/// own contribution unchanged (the result is only meaningful on root).
pub fn reduce(comm: &RankComm, group: Group, input: &Tensor, op: ReduceOp, root: usize) -> Tensor {
    let me = group.position(comm.rank());
    if me == root {
        // One copy-on-write materialization on the first fold; every
        // later contribution reduces in place.
        let mut acc = input.clone();
        // Deterministic order: ascending positions.
        for pos in 0..group.size {
            if pos != root {
                let incoming = comm.recv(group.rank_at(pos));
                acc.reduce_assign(&incoming, op)
                    .expect("contributions agree on geometry");
            }
        }
        acc
    } else {
        comm.send(group.rank_at(root), input.clone());
        input.clone()
    }
}

/// AllReduce of a single scalar (the embedded reduction of §5.2).
/// Sums ship a two-float (hi, lo) representation to keep `f64`-ish
/// precision for norms; min/max ship one value.
pub fn all_reduce_scalar(comm: &RankComm, group: Group, value: f64, op: ReduceOp) -> f64 {
    match op {
        ReduceOp::Sum => {
            let hi = value as f32;
            let lo = (value - f64::from(hi)) as f32;
            let t =
                Tensor::from_f32([2], coconet_tensor::DType::F32, &[hi, lo]).expect("two elements");
            let reduced = ring_all_reduce(comm, group, &t, op);
            f64::from(reduced.get(0)) + f64::from(reduced.get(1))
        }
        ReduceOp::Min | ReduceOp::Max => {
            let t = Tensor::from_f32([1], coconet_tensor::DType::F32, &[value as f32])
                .expect("one element");
            f64::from(ring_all_reduce(comm, group, &t, op).get(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use coconet_tensor::DType;

    #[test]
    fn chunk_ranges_tile_exactly() {
        for (n, k) in [(16, 4), (17, 4), (5, 8), (0, 3), (64, 5)] {
            let mut total = 0;
            let mut next = 0;
            for c in 0..k {
                let (off, len) = chunk_range(n, k, c);
                assert_eq!(off, next);
                next = off + len;
                total += len;
            }
            assert_eq!(total, n, "n={n} k={k}");
        }
    }

    #[test]
    fn chunk_range_with_more_chunks_than_elements() {
        // k > numel: the first `numel` chunks get one element each,
        // the trailing chunks are empty — and the ranges still tile.
        for (n, k) in [(3usize, 8usize), (1, 4), (0, 5), (7, 16)] {
            let mut next = 0;
            for c in 0..k {
                let (off, len) = chunk_range(n, k, c);
                assert_eq!(off, next, "n={n} k={k} c={c}");
                assert!(len <= 1, "n={n} k={k} c={c}: len {len}");
                assert_eq!(len, usize::from(c < n), "n={n} k={k} c={c}");
                next = off + len;
            }
            assert_eq!(next, n);
        }
        // Trailing empty chunks have in-bounds offsets (== numel).
        assert_eq!(chunk_range(3, 8, 7), (3, 0));
    }

    /// Regression: the ring collectives must survive degenerate
    /// chunking (`numel < k`, empty trailing chunks) without panicking
    /// and still produce the exact reduction/gather.
    #[test]
    fn ring_collectives_handle_degenerate_chunking() {
        let k = 6;
        for n in [0usize, 1, 3, 5] {
            let results = run_ranks(k, move |comm| {
                let group = Group { start: 0, size: k };
                let input = Tensor::from_fn([n], DType::F32, |i| (comm.rank() * 10 + i) as f32);
                let ar = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
                let chunk = ring_reduce_scatter(&comm, group, &input, ReduceOp::Sum);
                let gathered = ring_all_gather(&comm, group, &chunk);
                (ar, chunk, gathered)
            });
            // Column sums over ranks: sum_r (10r + i) = 150 + 6i.
            for (r, (ar, chunk, gathered)) in results.iter().enumerate() {
                assert_eq!(ar.numel(), n);
                for i in 0..n {
                    assert_eq!(ar.get(i), (150 + 6 * i) as f32, "n={n} rank={r}");
                }
                let (_, len) = chunk_range(n, k, r);
                assert_eq!(chunk.numel(), len, "n={n} rank={r}");
                let total: usize = gathered.iter().map(Tensor::numel).sum();
                assert_eq!(total, n, "n={n} rank={r}");
                let flat: Vec<f32> = gathered.iter().flat_map(|c| c.to_f32_vec()).collect();
                assert_eq!(flat, ar.to_f32_vec(), "n={n} rank={r}");
            }
        }
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let k = 4;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::from_fn([10], DType::F32, |i| (comm.rank() * 100 + i) as f32);
            ring_all_reduce(&comm, group, &input, ReduceOp::Sum)
        });
        // Expected: sum over ranks of (100r + i) = 600 + 4i.
        for t in &results {
            for i in 0..10 {
                assert_eq!(t.get(i), (600 + 4 * i) as f32);
            }
        }
        // All ranks agree exactly.
        for t in &results[1..] {
            assert_eq!(t.to_f32_vec(), results[0].to_f32_vec());
        }
    }

    #[test]
    fn reduce_scatter_owns_chunk_i() {
        let k = 4;
        let n = 16;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::from_fn([n], DType::F32, |i| i as f32);
            ring_reduce_scatter(&comm, group, &input, ReduceOp::Sum)
        });
        for (r, t) in results.iter().enumerate() {
            let (off, len) = chunk_range(n, k, r);
            assert_eq!(t.numel(), len);
            for i in 0..len {
                assert_eq!(t.get(i), (k * (off + i)) as f32, "rank {r} elem {i}");
            }
        }
    }

    #[test]
    fn all_gather_reassembles() {
        let k = 3;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let me = comm.rank();
            let chunk = Tensor::from_fn([4], DType::F32, |i| (me * 4 + i) as f32);
            ring_all_gather(&comm, group, &chunk)
        });
        for chunks in &results {
            let flat: Vec<f32> = chunks.iter().flat_map(|c| c.to_f32_vec()).collect();
            assert_eq!(flat, (0..12).map(|i| i as f32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rs_then_ag_equals_allreduce() {
        let k = 4;
        let n = 21; // uneven on purpose
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::from_fn([n], DType::F32, |i| ((comm.rank() + 1) * (i + 1)) as f32);
            let direct = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
            let chunk = ring_reduce_scatter(&comm, group, &input, ReduceOp::Sum);
            let gathered = ring_all_gather(&comm, group, &chunk);
            let mut composed = Tensor::zeros([n], DType::F32);
            let mut off = 0;
            for c in gathered {
                composed.write_flat(off, &c).unwrap();
                off += c.numel();
            }
            (direct, composed)
        });
        for (direct, composed) in &results {
            assert_eq!(direct.to_f32_vec(), composed.to_f32_vec());
        }
    }

    #[test]
    fn subgroup_collectives_are_independent() {
        // Two groups of 2 within a 4-rank world.
        let results = run_ranks(4, move |comm| {
            let g = if comm.rank() < 2 {
                Group { start: 0, size: 2 }
            } else {
                Group { start: 2, size: 2 }
            };
            let input = Tensor::full([4], DType::F32, (comm.rank() + 1) as f32);
            ring_all_reduce(&comm, g, &input, ReduceOp::Sum)
        });
        assert_eq!(results[0].get(0), 3.0); // 1 + 2
        assert_eq!(results[1].get(0), 3.0);
        assert_eq!(results[2].get(0), 7.0); // 3 + 4
        assert_eq!(results[3].get(0), 7.0);
    }

    #[test]
    fn broadcast_and_reduce() {
        let k = 3;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let me = comm.rank();
            let bcast = broadcast(
                &comm,
                group,
                (me == 1)
                    .then(|| Tensor::full([2], DType::F32, 42.0))
                    .as_ref(),
                1,
            );
            let contrib = Tensor::full([2], DType::F32, (me + 1) as f32);
            let red = reduce(&comm, group, &contrib, ReduceOp::Sum, 0);
            (bcast, red)
        });
        for (b, _) in &results {
            assert_eq!(b.get(0), 42.0);
        }
        assert_eq!(results[0].1.get(0), 6.0, "root holds the reduction");
    }

    #[test]
    fn min_max_reductions() {
        let k = 3;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::full([2], DType::F32, comm.rank() as f32);
            let mn = ring_all_reduce(&comm, group, &input, ReduceOp::Min);
            let mx = ring_all_reduce(&comm, group, &input, ReduceOp::Max);
            (mn, mx)
        });
        for (mn, mx) in &results {
            assert_eq!(mn.get(0), 0.0);
            assert_eq!(mx.get(0), 2.0);
        }
    }

    #[test]
    fn scalar_allreduce() {
        let k = 4;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            all_reduce_scalar(&comm, group, (comm.rank() + 1) as f64, ReduceOp::Sum)
        });
        for v in results {
            assert!((v - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn group_ring_neighbors() {
        let g = Group { start: 4, size: 4 };
        assert_eq!(g.next(7), 4);
        assert_eq!(g.prev(4), 7);
        assert_eq!(g.position(6), 2);
    }

    #[test]
    fn channels_clamp_to_the_wire_tag_range() {
        assert_eq!(clamp_channels(0), 1);
        assert_eq!(clamp_channels(1), 1);
        assert_eq!(clamp_channels(8), 8);
        assert_eq!(clamp_channels(MAX_CHANNELS + 9), MAX_CHANNELS);
    }

    /// The striped ring engine is bit-identical to the single-lane
    /// collectives and moves exactly the same byte volume, across
    /// wires, dtypes, and awkward geometries (uneven chunks, stripes
    /// wider than chunks).
    #[test]
    fn striped_ring_matches_single_lane_bit_for_bit() {
        use coconet_compress::WireFormat;
        for (k, n, channels) in [
            (4usize, 64usize, 2usize),
            (4, 67, 4),
            (8, 96, 8),
            (3, 7, 4), // stripes wider than some chunks
            (5, 2, 8), // empty chunks and empty stripes
        ] {
            for wire in [WireFormat::Dense, WireFormat::Fp16] {
                for dtype in [DType::F32, DType::F16] {
                    let results = run_ranks(k, move |comm| {
                        let group = Group { start: 0, size: k };
                        let input = Tensor::from_fn([n], dtype, |i| {
                            ((comm.rank() * 13 + i * 7) % 29) as f32 - 14.0
                        });
                        let single =
                            ring_all_reduce_wire(&comm, group, &input, ReduceOp::Sum, wire);
                        comm.reset_ledger();
                        let lone = comm.ledger();
                        let striped = ring_all_reduce_wire_striped(
                            &comm,
                            group,
                            &input,
                            ReduceOp::Sum,
                            wire,
                            channels,
                        );
                        let delta = comm.ledger();
                        let single_wire = {
                            comm.reset_ledger();
                            let before = comm.ledger();
                            let _ = ring_all_reduce_wire(&comm, group, &input, ReduceOp::Sum, wire);
                            let after = comm.ledger();
                            after.bytes_sent - before.bytes_sent
                        };
                        (
                            single,
                            striped,
                            delta.bytes_sent - lone.bytes_sent,
                            single_wire,
                        )
                    });
                    for (r, (single, striped, striped_bytes, single_bytes)) in
                        results.iter().enumerate()
                    {
                        let label = format!("k={k} n={n} C={channels} {wire} {dtype:?} rank={r}");
                        assert_eq!(striped.shape(), single.shape(), "{label}");
                        for i in 0..n {
                            assert_eq!(
                                striped.get(i).to_bits(),
                                single.get(i).to_bits(),
                                "{label} elem {i}"
                            );
                        }
                        assert_eq!(striped_bytes, single_bytes, "{label}");
                    }
                }
            }
        }
    }

    /// Striped ReduceScatter and AllGather keep the single-lane
    /// postconditions: position `i` owns chunk `i`, the gather
    /// reassembles, and composing them equals the striped AllReduce.
    #[test]
    fn striped_phases_compose() {
        let (k, n, channels) = (4usize, 21usize, 4usize);
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::from_fn([n], DType::F32, |i| ((comm.rank() + 1) * (i + 1)) as f32);
            let direct = ring_all_reduce_wire_striped(
                &comm,
                group,
                &input,
                ReduceOp::Sum,
                coconet_compress::WireFormat::Dense,
                channels,
            );
            let chunk = ring_reduce_scatter_wire_striped(
                &comm,
                group,
                &input,
                ReduceOp::Sum,
                coconet_compress::WireFormat::Dense,
                channels,
            );
            let single_chunk = ring_reduce_scatter(&comm, group, &input, ReduceOp::Sum);
            let gathered = ring_all_gather_wire_striped(
                &comm,
                group,
                &chunk,
                coconet_compress::WireFormat::Dense,
                channels,
            );
            let mut composed = Tensor::zeros([n], DType::F32);
            let mut off = 0;
            for c in gathered {
                composed.write_flat(off, &c).unwrap();
                off += c.numel();
            }
            (direct, chunk, single_chunk, composed)
        });
        for (r, (direct, chunk, single_chunk, composed)) in results.iter().enumerate() {
            let (_, len) = chunk_range(n, k, r);
            assert_eq!(chunk.numel(), len, "rank {r}");
            assert_eq!(
                chunk.to_f32_vec(),
                single_chunk.to_f32_vec(),
                "rank {r}: striped RS must equal single-lane RS"
            );
            assert_eq!(direct.to_f32_vec(), composed.to_f32_vec(), "rank {r}");
        }
    }
}
