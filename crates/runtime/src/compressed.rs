//! Compressed collectives: the runtime half of the wire-compression
//! subsystem.
//!
//! [`sparse_all_reduce`] is SparCML's sparse AllReduce over the message
//! fabric: every rank top-k-sparsifies its (error-feedback-corrected)
//! gradient into a [`SparseChunk`], the chunks travel as fixed-`k`
//! `(index, value)` payloads — `log2(p)` recursive-doubling rounds with
//! re-sparsification on power-of-two groups, the ring AllGather form
//! otherwise — and every rank densifies the identical combined chunk,
//! so the output is replicated exactly like a dense AllReduce's.
//!
//! Because every message is exactly `k` entries, the wire volume is
//! data-independent and the [`BytesLedger`](crate::BytesLedger) can
//! assert it equals [`sparse_all_reduce_wire_bytes`] to the byte.
//!
//! [`all_reduce_wire`] is the dispatch the executor and the training
//! loop share: it resolves the configured [`WireFormat`] exactly like
//! the simulator's cost model does (top-k only for sum AllReduces,
//! automatic dense switchover past the density where sparse is
//! larger), so what the tuner priced is what runs.

use coconet_compress::{sparse_beats_dense, sparsify_top_k, ErrorFeedback, WireFormat};
use coconet_core::CollAlgo;
use coconet_tensor::{ReduceOp, SparseChunk, Tensor};

use crate::collectives::{ring_all_reduce_wire_striped, Group};
use crate::hierarchical::hierarchical_all_reduce_wire_striped;
use crate::switch::switch_all_reduce;
use crate::tree::tree_all_reduce_wire_striped;
use crate::RankComm;

/// The wire format an AllReduce of `numel` elements actually runs
/// under — the runtime twin of the cost model's resolution: top-k
/// needs a sum reduction and must beat the dense ring volume
/// (otherwise the dense switchover takes it), FP16 and dense pass
/// through.
pub fn resolve_all_reduce_format(
    format: WireFormat,
    numel: usize,
    group_size: usize,
    op: ReduceOp,
    dtype: coconet_tensor::DType,
) -> WireFormat {
    match format {
        WireFormat::TopK { .. } => {
            let k = format.k_for(numel as u64);
            if op == ReduceOp::Sum
                && numel > 0
                && sparse_beats_dense(numel as u64, group_size as u64, k, dtype)
            {
                format
            } else {
                WireFormat::Dense
            }
        }
        f => f,
    }
}

/// AllReduce under a full communication configuration: the collective
/// algorithm *and* the wire format, with the top-k/dense switchover
/// applied. `feedback` carries the per-rank error-feedback residual
/// across iterations; pass `None` for one-shot collectives (the
/// dropped mass is discarded).
#[allow(clippy::too_many_arguments)]
pub fn all_reduce_wire(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    algo: CollAlgo,
    ranks_per_node: usize,
    format: WireFormat,
    feedback: Option<&mut ErrorFeedback>,
) -> Tensor {
    all_reduce_wire_striped(
        comm,
        group,
        input,
        op,
        algo,
        ranks_per_node,
        format,
        feedback,
        1,
    )
}

/// [`all_reduce_wire`] with the dense collectives striped over
/// `channels` concurrent lanes. The sparse top-k exchange and the
/// in-network switch keep their single-lane wire (fixed-`k` chunks and
/// fixed-point superchunks don't stripe); the ring, tree, and
/// hierarchical paths run their striped engines. Results are
/// bit-identical to `channels = 1` at every width and the per-rank
/// byte totals are unchanged.
#[allow(clippy::too_many_arguments)]
pub fn all_reduce_wire_striped(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    algo: CollAlgo,
    ranks_per_node: usize,
    format: WireFormat,
    feedback: Option<&mut ErrorFeedback>,
    channels: usize,
) -> Tensor {
    let format = resolve_all_reduce_format(format, input.numel(), group.size, op, input.dtype());
    if let WireFormat::TopK { .. } = format {
        return sparse_all_reduce(comm, group, input, format, feedback);
    }
    match algo {
        CollAlgo::Ring => ring_all_reduce_wire_striped(comm, group, input, op, format, channels),
        CollAlgo::Tree => tree_all_reduce_wire_striped(comm, group, input, op, format, channels),
        CollAlgo::Hierarchical => hierarchical_all_reduce_wire_striped(
            comm,
            group,
            input,
            op,
            ranks_per_node,
            format,
            channels,
        ),
        // The switch wire is fixed-point i32 regardless of the
        // configured dense format — FP16 neither helps nor hurts it,
        // exactly as the cost model prices. Its aggregation tree is a
        // single in-network lane, so channels don't apply either.
        CollAlgo::Switch => switch_all_reduce(comm, group, input, op),
    }
}

/// The sparse top-k AllReduce (sum only). Callers normally reach it
/// through [`all_reduce_wire`], which applies the dense switchover;
/// calling it directly runs the sparse exchange unconditionally.
///
/// Every rank returns the identical dense tensor: the densification of
/// the same combined `k`-entry chunk (recursive doubling keeps the
/// pair's merges bit-identical; the gather form sums all `p` chunks in
/// position order).
///
/// # Panics
///
/// Panics if `format` is not [`WireFormat::TopK`].
pub fn sparse_all_reduce(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    format: WireFormat,
    mut feedback: Option<&mut ErrorFeedback>,
) -> Tensor {
    assert!(
        matches!(format, WireFormat::TopK { .. }),
        "sparse_all_reduce needs a TopK format, got {format}"
    );
    let n = input.numel();
    let k = format.k_for(n as u64) as usize;
    let p = group.size;

    // Error feedback: re-inject the residual the previous iterations
    // dropped, select this iteration's chunk, remember the remainder.
    let corrected = match feedback.as_deref() {
        Some(ef) => ef.inject(input),
        None => input.cast(coconet_tensor::DType::F32),
    };
    let own = {
        let _codec = coconet_trace::span(
            coconet_trace::EventKind::Codec,
            "topk:select",
            n as u64,
            k as u64,
        );
        sparsify_top_k(&corrected, k)
    };
    if let Some(ef) = feedback.as_deref_mut() {
        ef.absorb(&corrected, &own);
    }
    if p <= 1 {
        return own
            .to_dense(input.dtype())
            .reshape(input.shape().clone())
            .expect("same numel");
    }

    let me = group.position(comm.rank());
    let combined = if p.is_power_of_two() {
        // SparCML recursive doubling with fixed-k re-sparsification:
        // in round r every rank exchanges its current chunk with the
        // partner `block` positions away and both keep the identical
        // top-k of the merged sum. The mass a round's re-sparsification
        // drops is fed back scaled by the block size (all `2·block`
        // ranks of the pair's blocks hold the same dropped entries, so
        // each re-injects its share).
        let mut acc = own;
        let mut block = 1usize;
        while block < p {
            let partner = group.rank_at(me ^ block);
            comm.send_sparse(partner, acc.clone());
            let theirs = comm.recv_sparse(partner);
            let merged = acc.merge_sum(&theirs);
            let (kept, dropped) = merged.split_top_k(k);
            if let Some(ef) = feedback.as_deref_mut() {
                if !dropped.is_empty() {
                    ef.absorb_scaled(&dropped, 1.0 / (2 * block) as f32);
                }
            }
            acc = kept;
            block <<= 1;
        }
        acc
    } else {
        // The AllGather form: every rank's chunk travels the ring and
        // everyone sums all `p` chunks in position order.
        let mut chunks: Vec<Option<SparseChunk>> = vec![None; p];
        chunks[me] = Some(own);
        for step in 0..p - 1 {
            let send_c = (me + p - step % p) % p;
            let recv_c = (me + p - step - 1) % p;
            let outgoing = chunks[send_c].clone().expect("chunk present by schedule");
            comm.send_sparse(group.next(comm.rank()), outgoing);
            chunks[recv_c] = Some(comm.recv_sparse(group.prev(comm.rank())));
        }
        let mut combined = chunks[0].take().expect("all chunks gathered");
        for c in chunks.into_iter().skip(1) {
            combined = combined.merge_sum(&c.expect("all chunks gathered"));
        }
        combined
    };

    let _codec = coconet_trace::span(
        coconet_trace::EventKind::Codec,
        "topk:densify",
        n as u64,
        k as u64,
    );
    combined
        .to_dense(input.dtype())
        .reshape(input.shape().clone())
        .expect("same numel")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run_ranks;
    use crate::ring_all_reduce;
    use coconet_tensor::DType;

    fn group_of(k: usize) -> Group {
        Group { start: 0, size: k }
    }

    /// k = n (1000 ‰) keeps every entry: the sparse exchange is then
    /// lossless and must agree with the dense ring exactly, on both
    /// the recursive-doubling and the AllGather forms.
    #[test]
    fn full_density_sparse_matches_dense_exactly() {
        for k in [4usize, 8, 6, 5] {
            let n = 24;
            let results = run_ranks(k, move |comm| {
                let input =
                    Tensor::from_fn([n], DType::F32, |i| (comm.rank() * 7 + i) as f32 - 10.0);
                let sparse = sparse_all_reduce(
                    &comm,
                    group_of(k),
                    &input,
                    WireFormat::TopK { k_permille: 1000 },
                    None,
                );
                let dense = ring_all_reduce(&comm, group_of(k), &input, ReduceOp::Sum);
                (sparse, dense)
            });
            for (r, (sparse, dense)) in results.iter().enumerate() {
                assert_eq!(
                    sparse.to_f32_vec(),
                    dense.to_f32_vec(),
                    "k={k} rank={r}: lossless sparse must equal dense"
                );
            }
        }
    }

    /// All ranks return the identical tensor (the replicated
    /// postcondition), for both exchange forms, at lossy densities.
    #[test]
    fn sparse_output_is_replicated() {
        for k in [8usize, 6] {
            let n = 64;
            let results = run_ranks(k, move |comm| {
                let input = Tensor::from_fn([n], DType::F32, |i| {
                    ((comm.rank() + 1) as f32) * ((i as f32) - 31.5)
                });
                sparse_all_reduce(
                    &comm,
                    group_of(k),
                    &input,
                    WireFormat::TopK { k_permille: 125 },
                    None,
                )
            });
            for t in &results[1..] {
                assert_eq!(t.to_f32_vec(), results[0].to_f32_vec(), "k={k}");
            }
        }
    }

    /// Error feedback accumulates everything the wire dropped: with a
    /// constant gradient, replaying the collective drains the residual
    /// into the output over iterations. Without feedback the
    /// never-selected elements are lost forever; with it the
    /// accumulated sparse stream closes in on the dense total.
    #[test]
    fn error_feedback_recovers_dropped_mass() {
        let k = 4usize;
        let n = 16;
        let iters = 64;
        let run = move |with_feedback: bool| {
            run_ranks(k, move |comm| {
                let input = Tensor::from_fn([n], DType::F32, |i| (i + 1) as f32 / 8.0);
                let mut ef = ErrorFeedback::new();
                let mut acc = Tensor::zeros([n], DType::F32);
                for _ in 0..iters {
                    let out = sparse_all_reduce(
                        &comm,
                        group_of(k),
                        &input,
                        WireFormat::TopK { k_permille: 250 },
                        with_feedback.then_some(&mut ef).map(|e| &mut *e),
                    );
                    acc = acc.add(&out).expect("same shape");
                }
                acc
            })
        };
        let with_ef = run(true);
        let without_ef = run(false);
        let dense_total: f32 = (0..n)
            .map(|i| (iters * k) as f32 * (i + 1) as f32 / 8.0)
            .sum();
        let total = |t: &Tensor| t.to_f32_vec().iter().sum::<f32>();
        for (fed, starved) in with_ef.iter().zip(&without_ef) {
            // The residual holds a bounded few iterations' worth of
            // mass; 64 iterations deliver well over 85 % of the dense
            // total. Without feedback the 12 never-selected elements
            // are simply gone (~43 % delivered).
            assert!(
                total(fed) >= 0.85 * dense_total,
                "with feedback: {} of {dense_total}",
                total(fed)
            );
            assert!(total(starved) < 0.5 * dense_total);
            // And feedback never over-delivers.
            assert!(total(fed) <= dense_total * 1.001);
        }
    }

    /// The dispatch applies the dense switchover and the sum-only rule.
    #[test]
    fn dispatch_switches_to_dense_when_sparse_is_larger() {
        // 500 ‰ on FP16 payloads is past the crossover; Max reductions
        // have no sparse form at all.
        assert_eq!(
            resolve_all_reduce_format(
                WireFormat::TopK { k_permille: 500 },
                1 << 12,
                8,
                ReduceOp::Sum,
                DType::F16
            ),
            WireFormat::Dense
        );
        assert_eq!(
            resolve_all_reduce_format(
                WireFormat::TopK { k_permille: 10 },
                1 << 12,
                8,
                ReduceOp::Max,
                DType::F32
            ),
            WireFormat::Dense
        );
        let active = resolve_all_reduce_format(
            WireFormat::TopK { k_permille: 10 },
            1 << 12,
            8,
            ReduceOp::Sum,
            DType::F32,
        );
        assert_eq!(active, WireFormat::TopK { k_permille: 10 });
        // FP16 and dense pass through untouched.
        assert_eq!(
            resolve_all_reduce_format(WireFormat::Fp16, 4, 2, ReduceOp::Min, DType::F32),
            WireFormat::Fp16
        );
    }

    /// `all_reduce_wire` agrees with the dense reference within the
    /// stated tolerances for every format and algorithm.
    #[test]
    fn dispatch_matches_dense_within_tolerance() {
        let k = 8usize;
        let n = 64;
        let results = run_ranks(k, move |comm| {
            let input =
                Tensor::from_fn([n], DType::F32, |i| ((comm.rank() * 13 + i) as f32) / 16.0);
            let dense = ring_all_reduce(&comm, group_of(k), &input, ReduceOp::Sum);
            let mut outs = Vec::new();
            for algo in CollAlgo::ALL {
                for format in WireFormat::SWEEP {
                    outs.push((
                        format!("{algo}/{format}"),
                        all_reduce_wire(
                            &comm,
                            group_of(k),
                            &input,
                            ReduceOp::Sum,
                            algo,
                            4,
                            format,
                            None,
                        ),
                    ));
                }
            }
            (dense, outs)
        });
        for (dense, outs) in &results {
            for (label, out) in outs {
                let diff = out.max_abs_diff(dense);
                // FP16 wire: per-hop rounding; top-k at 10 ‰ without
                // feedback: bounded by the dropped mass.
                let tol = if label.ends_with("Dense") {
                    0.0
                } else if label.ends_with("FP16") {
                    0.5
                } else {
                    dense
                        .to_f32_vec()
                        .iter()
                        .fold(0.0f32, |a, &b| a.max(b.abs()))
                };
                assert!(diff <= tol, "{label}: diff {diff} > tol {tol}");
            }
        }
    }
}
