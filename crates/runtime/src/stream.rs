//! Barrier-free streaming execution: poll-driven ring collectives
//! multiplexed over the tagged fabric by a priority scheduler.
//!
//! The blocking collectives in [`crate::collectives`] synchronize a
//! whole group at every call — a training loop built on them ends each
//! iteration with a global barrier. This module removes the barrier:
//!
//! * [`RingJob`] is the ring AllReduce re-expressed as a poll-driven
//!   state machine. Each poll advances at most one chunk hop (one send
//!   and/or one receive+fold), so many jobs interleave on one rank
//!   thread at chunk granularity. The arithmetic — chunk geometry,
//!   virtual-position schedule, fold order, wire encode points — is
//!   *identical* to [`ring_all_reduce_wire`](crate::ring_all_reduce_wire),
//!   which makes results bit-identical no matter how polls interleave.
//! * [`SwitchJob`] is the in-network switch AllReduce
//!   ([`switch_all_reduce`](crate::switch_all_reduce)) as the same kind
//!   of poll-driven state machine: the worker leg sends one quantized
//!   copy up and polls for the folded multicast; the group's position-0
//!   rank additionally hosts the dataplane, gathering contributions and
//!   folding them in ascending position order — the same fold as the
//!   blocking path, so results stay bit-identical under any poll
//!   interleaving.
//! * [`CommScheduler`] owns the in-flight jobs and services them in
//!   strict `(priority class, enqueue order)` order: each scheduling
//!   round runs one chunk hop of the highest-priority job that can make
//!   progress. A high-priority job enqueued late preempts lower ones at
//!   the next chunk boundary; a blocked high-priority job parks and
//!   lower-priority traffic fills the wire until its chunk arrives.
//! * [`StreamExecutor`] is the barrier-free training loop: parameters
//!   carry a *ready epoch*, gradient AllReduces are enqueued with the
//!   class of the layer's position in the **next** iteration's forward
//!   order, and iteration `i+1`'s forward blocks only on the specific
//!   parameter it is about to touch. First-layer gradients overtake
//!   last-layer gradients that backprop produced earlier — exactly the
//!   reordering the per-class [`BytesLedger`](crate::BytesLedger)
//!   counters and the scheduler's completion log expose.
//!
//! Deadlock freedom: sends never block (the fabric's channels are
//! unbounded), receives are non-blocking polls, and every rank polls
//! every unfinished job each round. The globally highest-priority
//! unfinished job is therefore always serviced on every rank it
//! touches, so it completes; induction over the priority order covers
//! the rest.

use coconet_compress::{QuantChunk, WireFormat};
use coconet_core::{CollAlgo, CommSched, XferSched};
use coconet_tensor::{DType, ReduceOp, Shape, Tensor};
use coconet_trace as trace;
use coconet_trace::EventKind;

use std::collections::HashMap;

use crate::collectives::{chunk_range, clamp_channels, wire_decode, wire_encode, Group};
use crate::comm::{RankComm, WireMsg};
use crate::ledger::PRIORITY_CLASSES;
use crate::switch::fold_contributions;

/// Where a [`RingJob`] is in the reduce-scatter → all-gather protocol.
#[derive(Debug)]
enum JobState {
    /// Reduce-scatter phase: `step` of `k-1`, `sent` marks whether this
    /// step's chunk is already on the wire.
    ReduceScatter { step: usize, sent: bool },
    /// All-gather phase over the fully reduced chunks.
    AllGather { step: usize, sent: bool },
    /// Finished; the assembled result is waiting to be taken.
    Done(Tensor),
}

/// A ring AllReduce in flight: the blocking collective's exact schedule,
/// advanced one chunk hop per poll instead of running to completion.
///
/// Chunks travel as *tagged* messages (`job` = this job's id), so any
/// number of jobs share each rank-to-rank stream without disturbing one
/// another — the receiver routes by tag, never by arrival order.
#[derive(Debug)]
pub struct RingJob {
    id: u64,
    class: u8,
    seq: u64,
    /// Stripe lane index (0 for single-lane jobs) — the trace `tid`
    /// its hop events render under.
    lane: u32,
    group: Group,
    op: ReduceOp,
    wire: WireFormat,
    dtype: DType,
    shape: Shape,
    /// Reduce-scatter working set: chunk views of the input, folded in
    /// place as partials arrive (same fold order as the blocking ring).
    rs_chunks: Vec<Tensor>,
    /// All-gather working set: wire-encoded chunk handles by position.
    ag_chunks: Vec<Option<Tensor>>,
    state: JobState,
}

impl RingJob {
    /// Starts a ring AllReduce of `input` over `group`, tagged `id` on
    /// the wire and scheduled at `class` (lower = serviced first).
    ///
    /// Top-k has no streaming ring form (like ReduceScatter/AllGather
    /// it resolves to the dense wire); `Dense` and `Fp16` reproduce
    /// [`ring_all_reduce_wire`](crate::ring_all_reduce_wire) exactly.
    pub fn new(
        id: u64,
        class: u8,
        seq: u64,
        group: Group,
        input: &Tensor,
        op: ReduceOp,
        wire: WireFormat,
    ) -> RingJob {
        RingJob::new_lane(id, class, seq, group, input, op, wire, 1, 0)
    }

    /// Starts lane `lane` of a `lanes`-wide striped ring AllReduce:
    /// this job moves stripe `chunk_range(chunk_len, lanes, lane)` of
    /// every ring chunk, following the single-lane chunk schedule, and
    /// finishes holding the flat concatenation of its fully gathered
    /// chunk stripes (in chunk order). [`CommScheduler::wait`]
    /// reassembles the lanes into the replicated output.
    #[allow(clippy::too_many_arguments)]
    fn new_lane(
        id: u64,
        class: u8,
        seq: u64,
        group: Group,
        input: &Tensor,
        op: ReduceOp,
        wire: WireFormat,
        lanes: usize,
        lane: usize,
    ) -> RingJob {
        let wire = match wire {
            WireFormat::TopK { .. } => WireFormat::Dense,
            f => f,
        };
        let k = group.size;
        let n = input.numel();
        let dtype = input.dtype();
        if k == 1 {
            // Degenerate group: the blocking ring returns the input's
            // values re-assembled into a fresh tensor; match it.
            // (Striped enqueues delegate singleton groups here whole,
            // so a lane job never sees k == 1 with a partial payload.)
            debug_assert_eq!(lanes, 1, "singleton groups run single-lane");
            let shape = input.shape().clone();
            let chunk = input.slice_flat(0, n).expect("full range");
            let mut out = Tensor::zeros(shape.clone(), dtype);
            out.write_flat(0, &chunk).expect("full range");
            return RingJob {
                id,
                class,
                seq,
                lane: lane as u32,
                group,
                op,
                wire,
                dtype,
                shape,
                rs_chunks: Vec::new(),
                ag_chunks: Vec::new(),
                state: JobState::Done(out),
            };
        }
        let rs_chunks: Vec<Tensor> = (0..k)
            .map(|c| {
                let (c_off, c_len) = chunk_range(n, k, c);
                let (s_off, s_len) = chunk_range(c_len, lanes, lane);
                input.slice_flat(c_off + s_off, s_len).expect("in range")
            })
            .collect();
        // A single-lane job assembles into the input's shape; a lane
        // job's result is the flat concatenation of its chunk stripes.
        let shape = if lanes == 1 {
            input.shape().clone()
        } else {
            Shape::from([rs_chunks.iter().map(Tensor::numel).sum::<usize>()])
        };
        RingJob {
            id,
            class,
            seq,
            lane: lane as u32,
            group,
            op,
            wire,
            dtype,
            shape,
            rs_chunks,
            ag_chunks: vec![None; k],
            state: JobState::ReduceScatter {
                step: 0,
                sent: false,
            },
        }
    }

    /// This job's wire tag.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This job's priority class.
    pub fn class(&self) -> u8 {
        self.class
    }

    fn is_done(&self) -> bool {
        matches!(self.state, JobState::Done(_))
    }

    /// Chunk hops still ahead of this job — the contention-aware
    /// scheduler's shortest-remaining-work key. The ring runs `k-1`
    /// reduce-scatter hops then `k-1` gather hops.
    fn remaining_hops(&self) -> usize {
        let k = self.group.size;
        match self.state {
            JobState::ReduceScatter { step, .. } => (k - 1 - step) + (k - 1),
            JobState::AllGather { step, .. } => k - 1 - step,
            JobState::Done(_) => 0,
        }
    }

    fn take_result(self) -> Tensor {
        match self.state {
            JobState::Done(t) => t,
            _ => unreachable!("take_result on an unfinished job"),
        }
    }

    /// Advances the job by at most one chunk hop: sends this step's
    /// chunk if it is not on the wire yet, then polls for the incoming
    /// chunk and folds/stores it. Returns `true` if anything moved.
    ///
    /// Sends go through [`RankComm::send_tagged`], so the per-class
    /// ledger counters attribute every byte to this job's class.
    fn poll(&mut self, comm: &RankComm) -> bool {
        let k = self.group.size;
        let me = self.group.position(comm.rank());
        let next = self.group.next(comm.rank());
        let prev = self.group.prev(comm.rank());
        let mut progressed = false;
        match &mut self.state {
            JobState::ReduceScatter { step, sent } => {
                // The blocking ring's virtual-position schedule.
                let j = (me + k - 1) % k;
                let send_c = (j + k - *step % k) % k;
                let recv_c = (j + k - *step - 1) % k;
                if !*sent {
                    let payload = wire_encode(&self.rs_chunks[send_c], self.wire);
                    trace::instant_lane(
                        EventKind::Hop,
                        "ring:rs",
                        self.lane,
                        self.id,
                        payload.size_bytes() as u64,
                    );
                    comm.send_tagged(next, self.id, self.class, WireMsg::Tensor(payload));
                    *sent = true;
                    progressed = true;
                }
                if let Some(msg) = comm.try_recv_tagged(prev, self.id) {
                    let incoming = wire_decode(expect_tensor(msg), self.wire, self.dtype);
                    self.rs_chunks[recv_c]
                        .reduce_assign(&incoming, self.op)
                        .expect("ring chunks agree on geometry");
                    progressed = true;
                    if *step + 1 < k - 1 {
                        *step += 1;
                        *sent = false;
                    } else {
                        // Reduce-scatter complete: position `me` owns
                        // the fully reduced chunk `me`. Seed the gather
                        // with its one-time wire encoding.
                        let mine = self.rs_chunks.swap_remove(me);
                        self.ag_chunks[me] = Some(wire_encode(&mine, self.wire));
                        self.rs_chunks.clear();
                        self.state = JobState::AllGather {
                            step: 0,
                            sent: false,
                        };
                    }
                }
            }
            JobState::AllGather { step, sent } => {
                let send_c = (me + k - *step % k) % k;
                let recv_c = (me + k - *step - 1) % k;
                if !*sent {
                    let payload = self.ag_chunks[send_c]
                        .clone()
                        .expect("chunk present by schedule");
                    trace::instant_lane(
                        EventKind::Hop,
                        "ring:ag",
                        self.lane,
                        self.id,
                        payload.size_bytes() as u64,
                    );
                    comm.send_tagged(next, self.id, self.class, WireMsg::Tensor(payload));
                    *sent = true;
                    progressed = true;
                }
                if let Some(msg) = comm.try_recv_tagged(prev, self.id) {
                    self.ag_chunks[recv_c] = Some(expect_tensor(msg));
                    progressed = true;
                    if *step + 1 < k - 1 {
                        *step += 1;
                        *sent = false;
                    } else {
                        self.state = JobState::Done(self.assemble());
                    }
                }
            }
            JobState::Done(_) => {}
        }
        progressed
    }

    /// Decodes the gathered chunks and assembles the replicated result
    /// — the blocking ring's exact epilogue.
    fn assemble(&mut self) -> Tensor {
        let mut out = Tensor::zeros(self.shape.clone(), self.dtype);
        let mut off = 0usize;
        for c in self.ag_chunks.drain(..) {
            let c = wire_decode(c.expect("all chunks gathered"), self.wire, self.dtype);
            out.write_flat(off, &c).expect("chunks tile the tensor");
            off += c.numel();
        }
        out
    }
}

fn expect_tensor(msg: WireMsg) -> Tensor {
    match msg {
        WireMsg::Tensor(t) => t,
        other => unreachable!("streaming ring jobs are dense-wire only, got {other:?}"),
    }
}

fn expect_quant(msg: WireMsg) -> QuantChunk {
    match msg {
        WireMsg::Quantized(c) => c,
        other => unreachable!("switch jobs carry quantized chunks only, got {other:?}"),
    }
}

/// An in-network switch AllReduce in flight: the blocking
/// [`switch_all_reduce`](crate::switch_all_reduce) as a poll-driven
/// state machine sharing the tagged fabric with [`RingJob`]s.
///
/// Every worker sends its quantized contribution up once; the
/// position-0 rank's job additionally runs the emulated dataplane —
/// gathering all contributions, folding them in ascending position
/// order (the determinism contract of saturating adds), and
/// multicasting the folded chunk tagged with this job's id. Worker legs
/// are ledgered per class; dataplane legs land in the
/// switch-attributed counters.
#[derive(Debug)]
pub struct SwitchJob {
    id: u64,
    class: u8,
    seq: u64,
    group: Group,
    op: ReduceOp,
    dtype: DType,
    shape: Shape,
    /// Quantized input awaiting its up-send.
    up: Option<QuantChunk>,
    /// Dataplane gather slots (non-empty on the position-0 host only).
    contribs: Vec<Option<QuantChunk>>,
    gathered: usize,
    multicast_done: bool,
    /// The dequantized result once the down multicast landed.
    result: Option<Tensor>,
}

impl SwitchJob {
    /// Starts a switch AllReduce of `input` over `group`, tagged `id`
    /// on the wire and scheduled at `class`. Note the wire is always
    /// fixed-point `i32` — there is no [`WireFormat`] parameter to pass.
    pub fn new(
        id: u64,
        class: u8,
        seq: u64,
        group: Group,
        input: &Tensor,
        op: ReduceOp,
    ) -> SwitchJob {
        let q = {
            let _codec = trace::span(EventKind::Codec, "q15:quantize", input.numel() as u64, id);
            QuantChunk::quantize(input)
        };
        let dtype = input.dtype();
        let shape = input.shape().clone();
        if group.size == 1 {
            // Degenerate group: the blocking path still round-trips
            // through the quantizer; match it.
            let out = q
                .dequantize(dtype)
                .reshape(shape.clone())
                .expect("same numel");
            return SwitchJob {
                id,
                class,
                seq,
                group,
                op,
                dtype,
                shape,
                up: None,
                contribs: Vec::new(),
                gathered: 0,
                multicast_done: true,
                result: Some(out),
            };
        }
        SwitchJob {
            id,
            class,
            seq,
            group,
            op,
            dtype,
            shape,
            up: Some(q),
            contribs: Vec::new(),
            gathered: 0,
            multicast_done: false,
            result: None,
        }
    }

    /// This job's wire tag.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This job's priority class.
    pub fn class(&self) -> u8 {
        self.class
    }

    fn is_done(&self) -> bool {
        self.result.is_some()
    }

    /// Legs still ahead of this job: the up-send, the dataplane
    /// fold/multicast, and the down receive.
    fn remaining_hops(&self) -> usize {
        usize::from(self.up.is_some())
            + usize::from(!self.multicast_done)
            + usize::from(self.result.is_none())
    }

    fn take_result(self) -> Tensor {
        self.result.expect("take_result on an unfinished job")
    }

    /// Advances the job: sends the up copy if still pending, runs one
    /// dataplane gather/fold/multicast round on the host, and polls for
    /// the down multicast. Returns `true` if anything moved.
    fn poll(&mut self, comm: &RankComm) -> bool {
        let me = self.group.position(comm.rank());
        let switch_rank = self.group.rank_at(0);
        let mut progressed = false;

        if let Some(q) = self.up.take() {
            trace::instant(EventKind::Hop, "switch:up", self.id, q.wire_bytes());
            comm.send_tagged(switch_rank, self.id, self.class, WireMsg::Quantized(q));
            progressed = true;
        }

        if me == 0 && !self.multicast_done {
            if self.contribs.is_empty() {
                self.contribs = vec![None; self.group.size];
            }
            for pos in 0..self.group.size {
                if self.contribs[pos].is_none() {
                    if let Some(msg) = comm.try_recv_tagged_switch(self.group.rank_at(pos), self.id)
                    {
                        self.contribs[pos] = Some(expect_quant(msg));
                        self.gathered += 1;
                        progressed = true;
                    }
                }
            }
            if self.gathered == self.group.size {
                let contribs = self
                    .contribs
                    .drain(..)
                    .map(|c| c.expect("all gathered"))
                    .collect();
                let folded = fold_contributions(contribs, self.op);
                for pos in 0..self.group.size {
                    trace::instant(
                        EventKind::Hop,
                        "switch:multicast",
                        self.id,
                        folded.wire_bytes(),
                    );
                    comm.send_tagged_switch(
                        self.group.rank_at(pos),
                        self.id,
                        WireMsg::Quantized(folded.clone()),
                    );
                }
                self.multicast_done = true;
                progressed = true;
            }
        }

        // The worker leg may only look for the down multicast once it
        // can exist — on the host rank the up copy sits in the same
        // self-channel under the same tag until the dataplane consumes
        // it, so polling earlier would swallow it.
        let down_may_exist = me != 0 || self.multicast_done;
        if self.result.is_none() && down_may_exist {
            if let Some(msg) = comm.try_recv_tagged(switch_rank, self.id) {
                let down = expect_quant(msg);
                trace::instant(EventKind::Hop, "switch:down", self.id, down.wire_bytes());
                let out = down
                    .dequantize(self.dtype)
                    .reshape(self.shape.clone())
                    .expect("same numel");
                self.result = Some(out);
                progressed = true;
            }
        }
        progressed
    }
}

/// An in-flight job of either flavor — what the scheduler's queue holds.
#[derive(Debug)]
enum Job {
    Ring(RingJob),
    Switch(SwitchJob),
}

impl Job {
    fn id(&self) -> u64 {
        match self {
            Job::Ring(j) => j.id(),
            Job::Switch(j) => j.id(),
        }
    }

    fn key(&self) -> (u8, u64) {
        match self {
            Job::Ring(j) => (j.class, j.seq),
            Job::Switch(j) => (j.class, j.seq),
        }
    }

    fn remaining_hops(&self) -> usize {
        match self {
            Job::Ring(j) => j.remaining_hops(),
            Job::Switch(j) => j.remaining_hops(),
        }
    }

    fn poll(&mut self, comm: &RankComm) -> bool {
        match self {
            Job::Ring(j) => j.poll(comm),
            Job::Switch(j) => j.poll(comm),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            Job::Ring(j) => j.is_done(),
            Job::Switch(j) => j.is_done(),
        }
    }

    fn take_result(self) -> Tensor {
        match self {
            Job::Ring(j) => j.take_result(),
            Job::Switch(j) => j.take_result(),
        }
    }
}

/// One structured completion record of the scheduler: which physical
/// job finished, at which priority class, and when. The timestamp is
/// trace-epoch nanoseconds ([`coconet_trace::now_ns`]) so completion
/// records line up with span timestamps in an exported trace.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The finished job's wire id (lane-tagged for striped lanes).
    pub id: u64,
    /// The priority class the job ran at.
    pub class: u8,
    /// Completion time in trace-epoch nanoseconds.
    pub ts_ns: u64,
}

/// Reassembly geometry of one striped logical job.
#[derive(Debug)]
struct StripedMeta {
    channels: usize,
    group_size: usize,
    shape: Shape,
    dtype: DType,
}

/// The wire tag of lane `lane` of striped logical job `id`: the lane
/// index rides the low [`LANE_BITS`] bits. Single-lane jobs keep their
/// raw id untouched, so the tag space is backward compatible.
fn lane_tag(id: u64, lane: usize) -> u64 {
    (id << LANE_BITS) | lane as u64
}

/// Bits [`lane_tag`] reserves for the lane index —
/// [`MAX_CHANNELS`](crate::MAX_CHANNELS) lanes fit exactly.
const LANE_BITS: u32 = 6;

/// The priority queue in front of the comm fabric: in-flight
/// [`RingJob`]s and [`SwitchJob`]s serviced in strict
/// `(class, enqueue order)` order with chunk-granular preemption
/// between priority levels.
#[derive(Debug, Default)]
pub struct CommScheduler {
    /// Unfinished jobs, kept sorted by `(class, seq)`.
    jobs: Vec<Job>,
    next_seq: u64,
    /// Cross-job transfer discipline: FIFO services strict
    /// `(class, seq)` order; Aware prefers the job with the fewest
    /// remaining chunk hops (class and seq break ties), the
    /// shortest-remaining-work policy that stops small transfers
    /// convoying behind large ones. Either way every byte still moves
    /// through the same tagged channels, so results and per-class
    /// ledger totals are bit-identical across disciplines — the knob
    /// reorders wire traffic, never data.
    xfer: XferSched,
    /// Lane geometry of striped logical jobs, by logical id —
    /// [`CommScheduler::wait`] uses it to reassemble lane results.
    striped: HashMap<u64, StripedMeta>,
    /// Finished results waiting for [`CommScheduler::wait`].
    completed: Vec<(u64, Tensor)>,
    /// Structured completion records in the order jobs finished — the
    /// reordering witness the steady-state experiment asserts on
    /// (via the [`completion_log`](CommScheduler::completion_log) id
    /// view) and the overlap profiler's job end marker.
    completions: Vec<Completion>,
}

impl CommScheduler {
    /// An empty scheduler (FIFO transfer discipline).
    pub fn new() -> CommScheduler {
        CommScheduler::default()
    }

    /// Selects the cross-job transfer discipline (builder style) — the
    /// runtime counterpart of a tuned plan's
    /// [`CommConfig::xfer`](coconet_core::CommConfig).
    pub fn with_xfer(mut self, xfer: XferSched) -> CommScheduler {
        self.xfer = xfer;
        self
    }

    /// Launches a ring AllReduce of `input` at `class` (clamped to
    /// [`PRIORITY_CLASSES`]; lower classes are serviced first — tag the
    /// launch with the consuming step's position in the next
    /// iteration's forward order). `id` must be agreed on by every rank
    /// in the group; it tags the job's chunks on the wire.
    ///
    /// Enqueuing performs no communication: the first chunk goes out on
    /// the first [`poll`](CommScheduler::poll) that services this job.
    pub fn enqueue(
        &mut self,
        id: u64,
        class: u8,
        group: Group,
        input: &Tensor,
        op: ReduceOp,
        wire: WireFormat,
    ) {
        let class = class.min(PRIORITY_CLASSES as u8 - 1);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.admit(Job::Ring(RingJob::new(
            id, class, seq, group, input, op, wire,
        )));
    }

    /// Launches a ring AllReduce striped across `channels` concurrent
    /// lanes: lane `s` is its own poll-driven [`RingJob`] moving stripe
    /// `chunk_range(chunk_len, channels, s)` of every ring chunk, with
    /// its own `(class, seq)` — so the scheduler preempts and
    /// interleaves lanes independently at chunk-stripe granularity.
    /// Lane chunks ride tagged `(id << 6) | lane`; callers must keep
    /// striped logical ids below `2^58`. `channels <= 1` (or a
    /// singleton group) is exactly [`enqueue`](CommScheduler::enqueue).
    ///
    /// [`wait`](CommScheduler::wait) on the logical `id` reassembles
    /// the lanes; results are bit-identical to the single-lane job at
    /// every width and the byte totals are unchanged (stripe sums
    /// partition every chunk).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_striped(
        &mut self,
        id: u64,
        class: u8,
        group: Group,
        input: &Tensor,
        op: ReduceOp,
        wire: WireFormat,
        channels: usize,
    ) {
        let channels = clamp_channels(channels);
        if channels == 1 || group.size == 1 {
            self.enqueue(id, class, group, input, op, wire);
            return;
        }
        debug_assert_eq!(id >> (64 - LANE_BITS), 0, "striped id overflows the tag");
        let class = class.min(PRIORITY_CLASSES as u8 - 1);
        self.striped.insert(
            id,
            StripedMeta {
                channels,
                group_size: group.size,
                shape: input.shape().clone(),
                dtype: input.dtype(),
            },
        );
        for lane in 0..channels {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.admit(Job::Ring(RingJob::new_lane(
                lane_tag(id, lane),
                class,
                seq,
                group,
                input,
                op,
                wire,
                channels,
                lane,
            )));
        }
    }

    /// Launches an in-network switch AllReduce of `input` at `class` —
    /// the [`SwitchJob`] twin of [`enqueue`](CommScheduler::enqueue).
    /// No wire format parameter: the switch wire is always fixed-point
    /// `i32`.
    pub fn enqueue_switch(
        &mut self,
        id: u64,
        class: u8,
        group: Group,
        input: &Tensor,
        op: ReduceOp,
    ) {
        let class = class.min(PRIORITY_CLASSES as u8 - 1);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.admit(Job::Switch(SwitchJob::new(
            id, class, seq, group, input, op,
        )));
    }

    fn admit(&mut self, job: Job) {
        let (class, _) = job.key();
        // The single choke point every physical job passes through —
        // striped lanes and switch jobs included — so every enqueue
        // event has a matching completion event with the same id.
        trace::instant(
            EventKind::SchedEnqueue,
            "sched:enqueue",
            job.id(),
            u64::from(class),
        );
        if job.is_done() {
            // Single-rank groups finish at enqueue time.
            self.record_completion(job.id(), class);
            self.completed.push((job.id(), job.take_result()));
            return;
        }
        let at = self.jobs.partition_point(|j| j.key() <= job.key());
        self.jobs.insert(at, job);
    }

    /// Appends a structured completion record (and its trace instant).
    /// The timestamp is read unconditionally — a clock read touches no
    /// data, so disabled-tracing runs stay bit-identical.
    fn record_completion(&mut self, id: u64, class: u8) {
        let ts_ns = trace::now_ns();
        trace::instant(
            EventKind::SchedComplete,
            "sched:complete",
            id,
            u64::from(class),
        );
        self.completions.push(Completion { id, class, ts_ns });
    }

    /// One scheduling round: runs one chunk hop of the most-preferred
    /// job that can make progress — strict `(class, seq)` order under
    /// FIFO, shortest-remaining-hops first (class and seq breaking
    /// ties) under the contention-aware discipline. Blocked jobs park;
    /// the first runnable lower-preference job fills the gap — that is
    /// the chunk-granular preemption between priority levels. Returns
    /// `true` if any job moved.
    pub fn poll(&mut self, comm: &RankComm) -> bool {
        // `jobs` is kept sorted by (class, seq), which is FIFO's
        // service order; Aware re-ranks by remaining work per round
        // (cheap: in-flight job counts are small).
        let order: Vec<usize> = match self.xfer {
            XferSched::Fifo => (0..self.jobs.len()).collect(),
            XferSched::Aware => {
                let mut order: Vec<usize> = (0..self.jobs.len()).collect();
                order.sort_by_key(|&i| (self.jobs[i].remaining_hops(), self.jobs[i].key()));
                order
            }
        };
        for (pos, i) in order.into_iter().enumerate() {
            if self.jobs[i].poll(comm) {
                if pos != 0 {
                    // A more-preferred job was blocked on the wire and a
                    // lower-preference one filled the slot — the
                    // chunk-granular preemption the trace exposes.
                    trace::instant(
                        EventKind::SchedPreempt,
                        "sched:fill",
                        self.jobs[i].id(),
                        pos as u64,
                    );
                }
                if self.jobs[i].is_done() {
                    let job = self.jobs.remove(i);
                    let (class, _) = job.key();
                    self.record_completion(job.id(), class);
                    self.completed.push((job.id(), job.take_result()));
                }
                return true;
            }
        }
        false
    }

    /// Polls until job `id` completes and returns its result. For a
    /// logical id launched with
    /// [`enqueue_striped`](CommScheduler::enqueue_striped), drains all
    /// of its lanes and reassembles their chunk stripes into the
    /// replicated output.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never enqueued.
    pub fn wait(&mut self, comm: &RankComm, id: u64) -> Tensor {
        let Some(meta) = self.striped.remove(&id) else {
            return self.wait_job(comm, id);
        };
        let lanes: Vec<Tensor> = (0..meta.channels)
            .map(|s| self.wait_job(comm, lane_tag(id, s)))
            .collect();
        // Scatter each lane's flat chunk-stripe concatenation back to
        // its per-chunk ranges.
        let n = meta.shape.numel();
        let k = meta.group_size;
        let mut out = Tensor::zeros(meta.shape, meta.dtype);
        for (s, lane_flat) in lanes.iter().enumerate() {
            let mut lane_off = 0usize;
            for c in 0..k {
                let (c_off, c_len) = chunk_range(n, k, c);
                let (s_off, s_len) = chunk_range(c_len, meta.channels, s);
                if s_len > 0 {
                    let stripe = lane_flat.slice_flat(lane_off, s_len).expect("in range");
                    out.write_flat(c_off + s_off, &stripe).expect("in range");
                    lane_off += s_len;
                }
            }
        }
        out
    }

    /// Polls until the physical job `id` (a raw or lane-tagged wire id)
    /// completes and returns its result.
    fn wait_job(&mut self, comm: &RankComm, id: u64) -> Tensor {
        loop {
            if let Some(at) = self.completed.iter().position(|(j, _)| *j == id) {
                return self.completed.swap_remove(at).1;
            }
            assert!(
                self.jobs.iter().any(|j| j.id() == id),
                "waiting on job {id} that was never enqueued"
            );
            if !self.poll(comm) {
                // Every local job is blocked on the wire; yield while
                // peers catch up.
                std::thread::yield_now();
            }
        }
    }

    /// Polls until every in-flight job completes; results stay claimable
    /// via [`wait`](CommScheduler::wait) (which no longer blocks).
    pub fn drain(&mut self, comm: &RankComm) {
        while !self.jobs.is_empty() {
            if !self.poll(comm) {
                std::thread::yield_now();
            }
        }
    }

    /// Number of unfinished jobs.
    pub fn in_flight(&self) -> usize {
        self.jobs.len()
    }

    /// Job ids in completion order — under priority scheduling the
    /// first-consumed (lowest-class) tensors appear first even when
    /// they were enqueued last. A compatibility view of
    /// [`completion_events`](CommScheduler::completion_events).
    pub fn completion_log(&self) -> Vec<u64> {
        self.completions.iter().map(|c| c.id).collect()
    }

    /// Structured completion records (id, class, timestamp) in the
    /// order jobs finished.
    pub fn completion_events(&self) -> &[Completion] {
        &self.completions
    }
}

/// One parameter of the streaming training loop: the tensor plus the
/// readiness bookkeeping that replaces the global barrier.
#[derive(Debug)]
struct StreamParam {
    value: Tensor,
    /// Last iteration whose gradient has been applied to `value`.
    ready_epoch: u64,
    /// The in-flight gradient job that must land before the *next*
    /// forward may touch this parameter.
    pending: Option<u64>,
}

/// The barrier-free multi-iteration executor: a data-parallel training
/// loop whose per-layer parameters are gated by ready-epochs instead of
/// an end-of-iteration barrier.
///
/// Per iteration: the forward walks layers first to last, blocking only
/// on the parameter it is about to touch (waiting applies the pending
/// reduced gradient and bumps the ready-epoch); the backward walks last
/// to first, enqueuing each layer's gradient AllReduce with priority
/// class = the layer's position in the next forward (clamped to
/// [`PRIORITY_CLASSES`]). Layer 0's gradient — produced *last* by
/// backprop — therefore overtakes layer L−1's on the wire, and the next
/// iteration's first layers unblock while later gradients still drain.
///
/// Under [`CommSched::Barriered`] the same loop drains every gradient
/// and applies every update at each iteration's end — the classic
/// barrier, kept as the baseline the steady-state experiment measures
/// against.
#[derive(Debug)]
pub struct StreamExecutor {
    group: Group,
    sched: CommSched,
    wire: WireFormat,
    algo: CollAlgo,
    channels: usize,
    scheduler: CommScheduler,
    params: Vec<StreamParam>,
    /// Iterations fully applied to every parameter.
    epoch: u64,
}

impl StreamExecutor {
    /// A streaming executor over `params` (one tensor per layer, in
    /// forward order) for the group `comm` belongs to.
    pub fn new(group: Group, params: Vec<Tensor>, sched: CommSched, wire: WireFormat) -> Self {
        StreamExecutor {
            group,
            sched,
            wire,
            algo: CollAlgo::Ring,
            channels: 1,
            scheduler: CommScheduler::new(),
            params: params
                .into_iter()
                .map(|value| StreamParam {
                    value,
                    ready_epoch: 0,
                    pending: None,
                })
                .collect(),
            epoch: 0,
        }
    }

    /// Routes gradient AllReduces through `algo`:
    /// [`CollAlgo::Switch`] streams [`SwitchJob`]s (fixed-point wire;
    /// results match the *blocking switch* bit for bit, carrying its
    /// quantization error versus the ring); every other algorithm
    /// streams the ring job, matching the blocking executor's fallback.
    pub fn with_algo(mut self, algo: CollAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Stripes every gradient AllReduce across `channels` lanes — each
    /// lane an independently preemptible sub-job of the scheduler (see
    /// [`CommScheduler::enqueue_striped`]). Parameters are
    /// bit-identical at every width; the switch algorithm's fixed-point
    /// wire stays single-lane. Clamped into
    /// `1..=`[`MAX_CHANNELS`](crate::MAX_CHANNELS).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = clamp_channels(channels);
        self
    }

    /// Selects the scheduler's cross-job transfer discipline. Outputs
    /// are bit-identical under either (see
    /// [`CommScheduler::with_xfer`]); only wire-service order moves.
    pub fn with_xfer(mut self, xfer: XferSched) -> Self {
        self.scheduler.xfer = xfer;
        self
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.params.len()
    }

    /// The scheduler's completion log (job id = `iter * L + layer`).
    pub fn completion_log(&self) -> Vec<u64> {
        self.scheduler.completion_log()
    }

    /// The scheduler's structured completion records.
    pub fn completion_events(&self) -> &[Completion] {
        self.scheduler.completion_events()
    }

    /// The wire tag of iteration `iter`'s layer-`layer` gradient job.
    /// Deterministic and rank-independent, as the fabric requires.
    pub fn job_id(&self, iter: u64, layer: usize) -> u64 {
        iter * self.params.len() as u64 + layer as u64
    }

    /// Blocks until `layer`'s parameter is up to date with every
    /// iteration whose gradient job was enqueued, applying the pending
    /// update through `apply`. This is the *only* wait the barrier-free
    /// forward performs — one parameter, not the world.
    fn ensure_ready(
        &mut self,
        comm: &RankComm,
        layer: usize,
        apply: &mut impl FnMut(usize, &mut Tensor, &Tensor),
    ) {
        if let Some(job) = self.params[layer].pending.take() {
            let reduced = {
                let _wait = trace::span(EventKind::ReadyWait, "ready_wait", job, layer as u64);
                self.scheduler.wait(comm, job)
            };
            {
                let _apply = trace::span(EventKind::Compute, "apply", layer as u64, job);
                apply(layer, &mut self.params[layer].value, &reduced);
            }
            self.params[layer].ready_epoch += 1;
        }
    }

    /// Progress tick at a kernel boundary: under the barrier-free
    /// schedule, drive every runnable chunk hop forward between two
    /// compute steps. This is what hides communication under compute —
    /// the gradients still draining from iteration `i` advance while
    /// iteration `i+1`'s forward runs, in strict priority order. The
    /// barriered schedule deliberately skips the tick: its fabric only
    /// moves inside the end-of-iteration drain, which is exactly the
    /// serialization the steady-state experiment measures against.
    fn tick(&mut self, comm: &RankComm) {
        if self.sched == CommSched::Priority {
            while self.scheduler.poll(comm) {}
        }
    }

    /// Runs `iters` iterations of the forward/backward/update loop.
    ///
    /// * `forward(layer, iter, param)` — the layer's forward compute
    ///   (called with the parameter guaranteed ready for `iter`).
    /// * `grad(layer, iter, param)` — produces this rank's local
    ///   gradient for the layer (called in reverse layer order).
    /// * `apply(layer, param, reduced)` — folds the group-reduced
    ///   gradient into the parameter.
    ///
    /// On return every enqueued gradient has been applied: the stream
    /// ends with one drain instead of `iters` barriers. Outputs are
    /// bit-identical to the barriered schedule — the scheduler reorders
    /// *wire traffic*, never the read-after-write order of parameters.
    pub fn run_iterations(
        &mut self,
        comm: &RankComm,
        iters: u64,
        mut forward: impl FnMut(usize, u64, &Tensor),
        mut grad: impl FnMut(usize, u64, &Tensor) -> Tensor,
        mut apply: impl FnMut(usize, &mut Tensor, &Tensor),
    ) {
        let layers = self.params.len();
        for _ in 0..iters {
            let iter = self.epoch;
            // Forward: first layers first, each gated on its own
            // ready-epoch only.
            for l in 0..layers {
                self.ensure_ready(comm, l, &mut apply);
                debug_assert_eq!(self.params[l].ready_epoch, iter);
                {
                    let _fwd = trace::span(EventKind::Compute, "forward", l as u64, iter);
                    forward(l, iter, &self.params[l].value);
                }
                // Later layers' gradients drain while this layer's
                // forward just ran; the next ensure_ready usually
                // finds its job already complete.
                self.tick(comm);
            }
            // Backward: gradients appear last layer first; each is
            // launched at the priority of its consumption point in the
            // next forward.
            for l in (0..layers).rev() {
                let g = {
                    let _bwd = trace::span(EventKind::Compute, "grad", l as u64, iter);
                    grad(l, iter, &self.params[l].value)
                };
                let id = self.job_id(iter, l);
                let class = l.min(PRIORITY_CLASSES - 1) as u8;
                if self.algo == CollAlgo::Switch {
                    self.scheduler
                        .enqueue_switch(id, class, self.group, &g, ReduceOp::Sum);
                } else {
                    self.scheduler.enqueue_striped(
                        id,
                        class,
                        self.group,
                        &g,
                        ReduceOp::Sum,
                        self.wire,
                        self.channels,
                    );
                }
                self.params[l].pending = Some(id);
            }
            if self.sched == CommSched::Barriered {
                // The classic end-of-iteration barrier: drain the
                // fabric and update every parameter before the next
                // forward may start.
                self.scheduler.drain(comm);
                for l in 0..layers {
                    self.ensure_ready(comm, l, &mut apply);
                }
            }
            self.epoch += 1;
        }
        // End of stream: settle outstanding updates so callers observe
        // the same final parameters as the barriered schedule.
        self.scheduler.drain(comm);
        for l in 0..layers {
            self.ensure_ready(comm, l, &mut apply);
        }
    }

    /// The parameter tensors, in layer order.
    pub fn params(&self) -> Vec<Tensor> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ring_all_reduce;
    use crate::comm::run_ranks;
    use coconet_tensor::CounterRng;

    fn group_of(k: usize) -> Group {
        Group { start: 0, size: k }
    }

    /// A polled job reproduces the blocking ring bit for bit, for every
    /// group size including the degenerate singleton.
    #[test]
    fn ring_job_matches_blocking_ring() {
        for k in [1usize, 2, 3, 4] {
            let results = run_ranks(k, move |comm| {
                let rng = CounterRng::new(42);
                let input = Tensor::randn([13], DType::F32, rng, (comm.rank() * 1000) as u64);
                let reference = ring_all_reduce(&comm, group_of(k), &input, ReduceOp::Sum);
                let mut sched = CommScheduler::new();
                sched.enqueue(9, 0, group_of(k), &input, ReduceOp::Sum, WireFormat::Dense);
                let got = sched.wait(&comm, 9);
                (got, reference)
            });
            for (got, reference) in results {
                assert_eq!(got.to_f32_vec(), reference.to_f32_vec(), "k={k}");
                assert_eq!(got.shape(), reference.shape());
            }
        }
    }

    /// A streamed switch job reproduces the blocking switch AllReduce
    /// bit for bit, for every group size including the singleton —
    /// both paths fold in ascending position order.
    #[test]
    fn switch_job_matches_blocking_switch() {
        use crate::switch::switch_all_reduce;
        for k in [1usize, 2, 3, 4, 7] {
            let results = run_ranks(k, move |comm| {
                let rng = CounterRng::new(42);
                let input = Tensor::randn([13], DType::F32, rng, (comm.rank() * 1000) as u64);
                let reference = switch_all_reduce(&comm, group_of(k), &input, ReduceOp::Sum);
                let mut sched = CommScheduler::new();
                sched.enqueue_switch(9, 0, group_of(k), &input, ReduceOp::Sum);
                let got = sched.wait(&comm, 9);
                (got, reference)
            });
            for (got, reference) in results {
                assert_eq!(
                    got.to_f32_vec()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    reference
                        .to_f32_vec()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "k={k}"
                );
                assert_eq!(got.shape(), reference.shape());
            }
        }
    }

    /// Ring and switch jobs share one scheduler: the urgent switch job
    /// completes before the earlier-enqueued low-priority ring job,
    /// and both match their blocking references.
    #[test]
    fn switch_and_ring_jobs_compose_under_priority() {
        use crate::switch::switch_all_reduce;
        let k = 4usize;
        let results = run_ranks(k, move |comm| {
            let rng = CounterRng::new(7);
            let late = Tensor::randn([11], DType::F32, rng, (comm.rank() * 10) as u64);
            let urgent = Tensor::randn([11], DType::F32, rng, (comm.rank() * 10 + 5) as u64);
            let ref_late = ring_all_reduce(&comm, group_of(k), &late, ReduceOp::Sum);
            let ref_urgent = switch_all_reduce(&comm, group_of(k), &urgent, ReduceOp::Sum);
            let mut sched = CommScheduler::new();
            sched.enqueue(100, 5, group_of(k), &late, ReduceOp::Sum, WireFormat::Dense);
            sched.enqueue_switch(200, 0, group_of(k), &urgent, ReduceOp::Sum);
            sched.drain(&comm);
            let log = sched.completion_log().to_vec();
            let got_urgent = sched.wait(&comm, 200);
            let got_late = sched.wait(&comm, 100);
            (log, got_urgent, ref_urgent, got_late, ref_late)
        });
        for (log, got_urgent, ref_urgent, got_late, ref_late) in results {
            assert_eq!(log, vec![200, 100], "class 0 must finish first");
            assert_eq!(got_urgent.to_f32_vec(), ref_urgent.to_f32_vec());
            assert_eq!(got_late.to_f32_vec(), ref_late.to_f32_vec());
        }
    }

    /// The streaming switch loop matches the blocking switch loop: a
    /// [`StreamExecutor`] routed through [`CollAlgo::Switch`] produces
    /// the same parameters as manually calling the blocking switch
    /// AllReduce per iteration.
    #[test]
    fn stream_executor_switch_matches_blocking_switch_loop() {
        use crate::switch::switch_all_reduce;
        let k = 4usize;
        let iters = 3u64;
        let results = run_ranks(k, move |comm| {
            let rng = CounterRng::new(23);
            let init = Tensor::randn([6], DType::F32, rng, 1);
            let rank = comm.rank();

            // Streamed.
            let mut exec = StreamExecutor::new(
                group_of(k),
                vec![init.clone()],
                CommSched::Priority,
                WireFormat::Dense,
            )
            .with_algo(CollAlgo::Switch);
            exec.run_iterations(
                &comm,
                iters,
                |_, _, _| {},
                move |_, iter, p| {
                    let scale = (rank + 1) as f32 * 0.01 + iter as f32 * 0.001;
                    Tensor::from_fn([6], DType::F32, |i| p.get(i) * scale + i as f32 * 0.1)
                },
                |_, p, g| {
                    let step = Tensor::from_fn([6], DType::F32, |i| p.get(i) - 0.05 * g.get(i));
                    *p = step;
                },
            );
            let streamed = exec.params().swap_remove(0);

            // Blocking reference: same recurrence, blocking switch.
            let mut w = init;
            for iter in 0..iters {
                let scale = (rank + 1) as f32 * 0.01 + iter as f32 * 0.001;
                let g = Tensor::from_fn([6], DType::F32, |i| w.get(i) * scale + i as f32 * 0.1);
                let reduced = switch_all_reduce(&comm, group_of(k), &g, ReduceOp::Sum);
                w = Tensor::from_fn([6], DType::F32, |i| w.get(i) - 0.05 * reduced.get(i));
            }
            (streamed, w)
        });
        for (streamed, blocking) in results {
            assert_eq!(streamed.to_f32_vec(), blocking.to_f32_vec());
        }
    }

    /// Two concurrent jobs of different classes complete in *priority*
    /// order even though the low-priority one was enqueued first, and
    /// both match the blocking reference.
    #[test]
    fn scheduler_reorders_completion_to_priority_order() {
        let k = 4usize;
        let results = run_ranks(k, move |comm| {
            let rng = CounterRng::new(7);
            let late = Tensor::randn([11], DType::F32, rng, (comm.rank() * 10) as u64);
            let urgent = Tensor::randn([11], DType::F32, rng, (comm.rank() * 10 + 5) as u64);
            let ref_late = ring_all_reduce(&comm, group_of(k), &late, ReduceOp::Sum);
            let ref_urgent = ring_all_reduce(&comm, group_of(k), &urgent, ReduceOp::Sum);
            let mut sched = CommScheduler::new();
            // Enqueue order is backprop order: the last-consumed tensor
            // appears first.
            sched.enqueue(100, 5, group_of(k), &late, ReduceOp::Sum, WireFormat::Dense);
            sched.enqueue(
                200,
                0,
                group_of(k),
                &urgent,
                ReduceOp::Sum,
                WireFormat::Dense,
            );
            sched.drain(&comm);
            let log = sched.completion_log().to_vec();
            let got_urgent = sched.wait(&comm, 200);
            let got_late = sched.wait(&comm, 100);
            (log, got_urgent, ref_urgent, got_late, ref_late)
        });
        for (log, got_urgent, ref_urgent, got_late, ref_late) in results {
            assert_eq!(log, vec![200, 100], "class 0 must finish first");
            assert_eq!(got_urgent.to_f32_vec(), ref_urgent.to_f32_vec());
            assert_eq!(got_late.to_f32_vec(), ref_late.to_f32_vec());
        }
    }

    /// Deterministic preemption proof against a scripted peer: a
    /// low-class job whose peer chunks are withheld parks, the
    /// high-class-number job enqueued *after* it cannot overtake it,
    /// and the per-class ledger shows class-0 traffic fully drained
    /// while class-5 traffic is still partial.
    #[test]
    fn priority_traffic_drains_before_low_priority_traffic() {
        let k = 2usize;
        let n = 8usize; // per-rank elements; k=2 -> two 4-element chunks
        let mut world = RankComm::world(k);
        let peer = world.pop().unwrap(); // rank 1, scripted
        let me = world.pop().unwrap(); // rank 0, runs the scheduler

        let urgent_in = Tensor::from_fn([n], DType::F32, |i| i as f32);
        let low_in = Tensor::from_fn([n], DType::F32, |i| (i * 10) as f32);
        let mut sched = CommScheduler::new();
        // Backprop order: the low-priority (last-consumed) gradient is
        // produced and enqueued first.
        sched.enqueue(1, 5, group_of(k), &low_in, ReduceOp::Sum, WireFormat::Dense);
        sched.enqueue(
            2,
            0,
            group_of(k),
            &urgent_in,
            ReduceOp::Sum,
            WireFormat::Dense,
        );

        // Round 1: the class-0 job is serviced first — its RS chunk
        // goes out before the earlier-enqueued class-5 job's.
        assert!(sched.poll(&me));
        let after_first_send = me.ledger();
        assert_eq!(after_first_send.class_bytes_sent[0], 16, "4 f32 chunk");
        assert_eq!(
            after_first_send.class_bytes_sent[5], 0,
            "class 5 parked behind class 0"
        );

        // The scripted peer answers job 2 (urgent) promptly — its RS
        // partial, then its fully reduced gather chunk — but withholds
        // job 1 entirely; rank 0's scheduler must drive the urgent job
        // to completion with the low job parked on the wire.
        let peer_rs = Tensor::from_fn([4], DType::F32, |i| 100.0 + i as f32);
        let peer_ag = Tensor::from_fn([4], DType::F32, |i| 200.0 + i as f32);
        peer.send_tagged(0, 2, 0, WireMsg::Tensor(peer_rs));
        peer.send_tagged(0, 2, 0, WireMsg::Tensor(peer_ag));
        let urgent = sched.wait(&me, 2);
        // Chunk 0 is the local [0..4] folded with the peer's partial;
        // chunk 1 arrived verbatim from the peer's gather hop.
        assert_eq!(
            urgent.to_f32_vec(),
            vec![100.0, 102.0, 104.0, 106.0, 200.0, 201.0, 202.0, 203.0]
        );

        let ledger = me.ledger();
        let full_volume = 2 * 16u64; // one RS + one AG chunk of 4 f32
        assert_eq!(
            ledger.class_bytes_sent[0], full_volume,
            "urgent job fully drained"
        );
        assert!(
            ledger.class_bytes_sent[5] < full_volume,
            "low-priority job still partial: {} bytes",
            ledger.class_bytes_sent[5]
        );
        assert_eq!(sched.in_flight(), 1, "low job still in flight");
        assert_eq!(sched.completion_log(), &[2]);

        // Unblock the peer side (its RS partial, then its gather chunk)
        // so the low job can finish too.
        peer.send_tagged(0, 1, 5, WireMsg::Tensor(Tensor::zeros([4], DType::F32)));
        peer.send_tagged(0, 1, 5, WireMsg::Tensor(Tensor::zeros([4], DType::F32)));
        sched.drain(&me);
        assert_eq!(sched.completion_log(), &[2, 1]);
        assert_eq!(me.ledger().class_bytes_sent[5], full_volume);
        // The scripted peer leaves its incoming chunks unread; that is
        // fine — channels are unbounded and the test owns both ends.
    }

    /// The transfer discipline only reorders wire service: an N-job
    /// mixed ring/switch workload produces bit-identical results and
    /// identical per-class ledger byte totals under FIFO and under the
    /// contention-aware scheduler, on every rank — the determinism
    /// contract that makes `xfer` a pure performance knob.
    #[test]
    fn aware_discipline_is_bit_identical_to_fifo() {
        use crate::ledger::BytesLedger;
        let k = 4usize;
        let run = move |xfer: XferSched| -> Vec<(Vec<Vec<u32>>, BytesLedger)> {
            run_ranks(k, move |comm| {
                let rng = CounterRng::new(17);
                // Mixed sizes and classes: the big low-priority ring
                // job convoys the small ones under FIFO, and the Aware
                // policy reorders them — results must not move.
                let big = Tensor::randn([64], DType::F32, rng, (comm.rank() * 7) as u64);
                let mid = Tensor::randn([16], DType::F32, rng, (comm.rank() * 7 + 1) as u64);
                let tiny = Tensor::randn([4], DType::F32, rng, (comm.rank() * 7 + 2) as u64);
                let quant = Tensor::randn([8], DType::F32, rng, (comm.rank() * 7 + 3) as u64);
                let mut sched = CommScheduler::new().with_xfer(xfer);
                sched.enqueue(1, 1, group_of(k), &big, ReduceOp::Sum, WireFormat::Dense);
                sched.enqueue(2, 3, group_of(k), &mid, ReduceOp::Sum, WireFormat::Fp16);
                sched.enqueue(3, 2, group_of(k), &tiny, ReduceOp::Max, WireFormat::Dense);
                sched.enqueue_switch(4, 0, group_of(k), &quant, ReduceOp::Sum);
                sched.drain(&comm);
                let outs: Vec<Vec<u32>> = (1..=4)
                    .map(|id| {
                        sched
                            .wait(&comm, id)
                            .to_f32_vec()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect()
                    })
                    .collect();
                (outs, comm.ledger())
            })
        };
        let fifo = run(XferSched::Fifo);
        let aware = run(XferSched::Aware);
        for (rank, ((fo, fl), (ao, al))) in fifo.iter().zip(aware.iter()).enumerate() {
            assert_eq!(fo, ao, "rank {rank}: outputs diverged across disciplines");
            assert_eq!(
                fl.class_bytes_sent, al.class_bytes_sent,
                "rank {rank}: per-class ledger diverged"
            );
        }
        // And the Aware run itself is reproducible poll-for-poll.
        let again = run(XferSched::Aware);
        for ((ao, al), (bo, bl)) in aware.iter().zip(again.iter()) {
            assert_eq!(ao, bo);
            assert_eq!(al.class_bytes_sent, bl.class_bytes_sent);
        }
    }

    /// A striped scheduler job reproduces the blocking ring bit for
    /// bit at every lane width — including widths above the chunk
    /// length — and moves exactly the single-lane byte volume.
    #[test]
    fn striped_job_matches_blocking_ring() {
        for (k, n, channels) in [
            (2usize, 8usize, 2usize),
            (4, 13, 4),
            (4, 13, 8),
            (3, 5, 4),
            (1, 7, 4), // singleton group delegates to the plain job
        ] {
            for wire in [WireFormat::Dense, WireFormat::Fp16] {
                let results = run_ranks(k, move |comm| {
                    let rng = CounterRng::new(42);
                    let input = Tensor::randn([n], DType::F32, rng, (comm.rank() * 1000) as u64);
                    let reference = crate::ring_all_reduce_wire(
                        &comm,
                        group_of(k),
                        &input,
                        ReduceOp::Sum,
                        wire,
                    );
                    comm.reset_ledger();
                    let single_bytes = {
                        let before = comm.ledger().bytes_sent;
                        let mut sched = CommScheduler::new();
                        sched.enqueue(9, 0, group_of(k), &input, ReduceOp::Sum, wire);
                        let _ = sched.wait(&comm, 9);
                        comm.ledger().bytes_sent - before
                    };
                    let before = comm.ledger().bytes_sent;
                    let mut sched = CommScheduler::new();
                    sched.enqueue_striped(9, 0, group_of(k), &input, ReduceOp::Sum, wire, channels);
                    let got = sched.wait(&comm, 9);
                    let striped_bytes = comm.ledger().bytes_sent - before;
                    (got, reference, striped_bytes, single_bytes)
                });
                for (r, (got, reference, striped_bytes, single_bytes)) in
                    results.into_iter().enumerate()
                {
                    let label = format!("k={k} n={n} C={channels} {wire} rank={r}");
                    assert_eq!(got.shape(), reference.shape(), "{label}");
                    let bits = |t: &Tensor| {
                        t.to_f32_vec()
                            .iter()
                            .map(|v| v.to_bits())
                            .collect::<Vec<_>>()
                    };
                    assert_eq!(bits(&got), bits(&reference), "{label}");
                    assert_eq!(striped_bytes, single_bytes, "{label}");
                }
            }
        }
    }

    /// The streaming training loop is bit-identical across channel
    /// widths: lanes change the wire framing, never the parameters.
    #[test]
    fn stream_executor_channels_are_bit_identical() {
        let k = 4usize;
        let layers = 3usize;
        let iters = 3u64;
        let run = move |channels: usize| {
            run_ranks(k, move |comm| {
                let rng = CounterRng::new(11);
                let params: Vec<Tensor> = (0..layers)
                    .map(|l| Tensor::randn([6], DType::F32, rng, l as u64))
                    .collect();
                let mut exec = StreamExecutor::new(
                    group_of(k),
                    params,
                    CommSched::Priority,
                    WireFormat::Dense,
                )
                .with_channels(channels);
                let rank = comm.rank();
                exec.run_iterations(
                    &comm,
                    iters,
                    |_, _, _| {},
                    move |l, iter, p| {
                        let scale = (rank + 1) as f32 * 0.01 + iter as f32 * 0.001;
                        let lf = l as f32;
                        Tensor::from_fn([6], DType::F32, |i| p.get(i) * scale + lf + i as f32 * 0.1)
                    },
                    |_, p, g| {
                        let step = Tensor::from_fn([6], DType::F32, |i| p.get(i) - 0.05 * g.get(i));
                        *p = step;
                    },
                );
                exec.params()
            })
        };
        let single = run(1);
        for channels in [2usize, 4] {
            let striped = run(channels);
            for (rank, (sp, cp)) in single.iter().zip(striped.iter()).enumerate() {
                for (a, b) in sp.iter().zip(cp.iter()) {
                    assert_eq!(
                        a.to_f32_vec(),
                        b.to_f32_vec(),
                        "C={channels} rank={rank}: params diverged"
                    );
                }
            }
        }
    }

    /// The streaming loop produces bit-identical parameters to the
    /// barriered loop, while its completion log proves first-consumed
    /// gradients synchronized first.
    #[test]
    fn stream_executor_matches_barriered_and_reorders() {
        let k = 4usize;
        let layers = 3usize;
        let iters = 5u64;
        let run = move |sched_kind: CommSched| {
            run_ranks(k, move |comm| {
                let rng = CounterRng::new(11);
                let params: Vec<Tensor> = (0..layers)
                    .map(|l| Tensor::randn([6], DType::F32, rng, l as u64))
                    .collect();
                let mut exec =
                    StreamExecutor::new(group_of(k), params, sched_kind, WireFormat::Dense);
                let rank = comm.rank();
                exec.run_iterations(
                    &comm,
                    iters,
                    |_, _, _| {},
                    move |l, iter, p| {
                        // Rank- and iteration-dependent local gradient.
                        let scale = (rank + 1) as f32 * 0.01 + iter as f32 * 0.001;
                        let lf = l as f32;
                        Tensor::from_fn([6], DType::F32, |i| p.get(i) * scale + lf + i as f32 * 0.1)
                    },
                    |_, p, g| {
                        let lr = 0.05f32;
                        let step = Tensor::from_fn([6], DType::F32, |i| p.get(i) - lr * g.get(i));
                        *p = step;
                    },
                );
                (exec.params(), exec.completion_log().to_vec())
            })
        };
        let barriered = run(CommSched::Barriered);
        let streamed = run(CommSched::Priority);
        for ((bp, _), (sp, log)) in barriered.iter().zip(streamed.iter()) {
            for (b, s) in bp.iter().zip(sp.iter()) {
                assert_eq!(b.to_f32_vec(), s.to_f32_vec(), "params diverge");
            }
            // Within each iteration the layer-0 job (enqueued last)
            // completes before the layer-2 job (enqueued first).
            for it in 0..iters {
                let pos = |l: usize| {
                    log.iter()
                        .position(|&j| j == it * layers as u64 + l as u64)
                        .expect("job completed")
                };
                assert!(
                    pos(0) < pos(layers - 1),
                    "iter {it}: first-consumed gradient must land first"
                );
            }
        }
    }
}
