//! Distributed tensor values: a layout plus this rank's local storage.
//!
//! The executor evaluates every DSL operation against these values.
//! Per-element access goes through *global* indices, so a computation
//! produces identical results whether its operands are replicated or
//! sliced — which is exactly the property that makes the paper's
//! transformations semantics-preserving, and what the integration tests
//! verify.

use coconet_core::{Layout, SliceDim};
use coconet_tensor::{Shape, Tensor};

/// A distributed value as seen from one rank: the global shape, the
/// distributed layout, and the local storage (the full tensor for
/// `Replicated`/`Local`, this rank's slice for `Sliced`).
#[derive(Clone, Debug)]
pub struct DistValue {
    /// Global (undistributed) shape.
    pub global_shape: Shape,
    /// Distributed layout.
    pub layout: Layout,
    /// This rank's local storage.
    pub local: Tensor,
    /// This rank's position within its group.
    pub pos: usize,
    /// Group size.
    pub group_size: usize,
}

impl DistValue {
    /// A replicated value (same full tensor on every rank).
    pub fn replicated(local: Tensor, pos: usize, group_size: usize) -> DistValue {
        DistValue {
            global_shape: local.shape().clone(),
            layout: Layout::Replicated,
            local,
            pos,
            group_size,
        }
    }

    /// A local value (full shape, rank-specific contents).
    pub fn local(local: Tensor, pos: usize, group_size: usize) -> DistValue {
        DistValue {
            global_shape: local.shape().clone(),
            layout: Layout::Local,
            local,
            pos,
            group_size,
        }
    }

    /// Number of elements this rank stores.
    pub fn local_numel(&self) -> usize {
        self.local.numel()
    }

    /// Number of elements of the global tensor.
    pub fn global_numel(&self) -> usize {
        self.global_shape.numel()
    }

    /// The per-rank flat chunk length for flat-sliced layouts.
    ///
    /// # Panics
    ///
    /// Panics if the global element count does not divide the group
    /// (the type checker enforces divisibility before execution).
    pub fn flat_chunk(&self) -> usize {
        let n = self.global_numel();
        assert_eq!(n % self.group_size, 0, "indivisible sliced tensor");
        n / self.group_size
    }

    /// Maps a local element index to its global flat index.
    pub fn global_index(&self, local_idx: usize) -> usize {
        DistValue::global_index_in(
            &self.global_shape,
            self.layout,
            self.local.shape(),
            self.pos,
            self.group_size,
            local_idx,
        )
    }

    /// The local-to-global index mapping without a materialized
    /// [`DistValue`] — what callers use to fill a local buffer in one
    /// pass instead of allocating a placeholder tensor first.
    pub(crate) fn global_index_in(
        global_shape: &Shape,
        layout: Layout,
        local_shape: &Shape,
        pos: usize,
        group_size: usize,
        local_idx: usize,
    ) -> usize {
        match layout {
            Layout::Replicated | Layout::Local => local_idx,
            Layout::Sliced(SliceDim::Flat) => {
                let n = global_shape.numel();
                assert_eq!(n % group_size, 0, "indivisible sliced tensor");
                pos * (n / group_size) + local_idx
            }
            Layout::Sliced(SliceDim::Dim(d)) => {
                let global_dims = global_shape.dims();
                let local_extent = global_dims[d] / group_size;
                let l_strides = local_shape.strides();
                let g_strides = global_shape.strides();
                let mut g = 0usize;
                for dim in 0..local_shape.rank() {
                    let mut coord = (local_idx / l_strides[dim]) % local_shape.dim(dim);
                    if dim == d {
                        coord += pos * local_extent;
                    }
                    g += coord * g_strides[dim];
                }
                g
            }
        }
    }

    /// Reads the element at a *global* flat index.
    ///
    /// # Panics
    ///
    /// Panics if this rank does not store that element (the layout
    /// rules guarantee it does for well-typed programs).
    pub fn read_global(&self, gidx: usize) -> f32 {
        match self.layout {
            Layout::Replicated | Layout::Local => self.local.get(gidx),
            Layout::Sliced(SliceDim::Flat) => {
                let chunk = self.flat_chunk();
                let local = gidx
                    .checked_sub(self.pos * chunk)
                    .filter(|&l| l < chunk)
                    .unwrap_or_else(|| {
                        panic!("rank pos {} does not hold global index {gidx}", self.pos)
                    });
                self.local.get(local)
            }
            Layout::Sliced(SliceDim::Dim(d)) => {
                let g_strides = self.global_shape.strides();
                let local_shape = self.local.shape();
                let l_strides = local_shape.strides();
                let local_extent = self.global_shape.dim(d) / self.group_size;
                let mut l = 0usize;
                for dim in 0..self.global_shape.rank() {
                    let mut coord = (gidx / g_strides[dim]) % self.global_shape.dim(dim);
                    if dim == d {
                        coord = coord
                            .checked_sub(self.pos * local_extent)
                            .filter(|&c| c < local_extent)
                            .unwrap_or_else(|| {
                                panic!("rank pos {} does not hold dim-{d} coordinate", self.pos)
                            });
                    }
                    l += coord * l_strides[dim];
                }
                self.local.get(l)
            }
        }
    }

    /// The shape of the local storage for a given layout over a global
    /// shape.
    pub fn local_shape(global: &Shape, layout: Layout, group_size: usize) -> Shape {
        match layout {
            Layout::Replicated | Layout::Local => global.clone(),
            Layout::Sliced(SliceDim::Flat) => Shape::from([global.numel() / group_size]),
            Layout::Sliced(SliceDim::Dim(d)) => {
                let mut dims = global.dims().to_vec();
                dims[d] /= group_size;
                Shape::new(dims)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_tensor::DType;

    #[test]
    fn replicated_identity_mapping() {
        let t = Tensor::from_fn([2, 3], DType::F32, |i| i as f32);
        let v = DistValue::replicated(t, 1, 4);
        for i in 0..6 {
            assert_eq!(v.global_index(i), i);
            assert_eq!(v.read_global(i), i as f32);
        }
    }

    #[test]
    fn flat_sliced_mapping() {
        // Global [8], 4 ranks, rank pos 2 holds elements 4..6.
        let local = Tensor::from_f32([2], DType::F32, &[40.0, 50.0]).unwrap();
        let v = DistValue {
            global_shape: Shape::from([8]),
            layout: Layout::sliced_flat(),
            local,
            pos: 2,
            group_size: 4,
        };
        assert_eq!(v.flat_chunk(), 2);
        assert_eq!(v.global_index(0), 4);
        assert_eq!(v.global_index(1), 5);
        assert_eq!(v.read_global(4), 40.0);
        assert_eq!(v.read_global(5), 50.0);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn flat_sliced_out_of_slice_panics() {
        let v = DistValue {
            global_shape: Shape::from([8]),
            layout: Layout::sliced_flat(),
            local: Tensor::zeros([2], DType::F32),
            pos: 2,
            group_size: 4,
        };
        v.read_global(0);
    }

    #[test]
    fn dim_sliced_mapping() {
        // Global [2, 4] sliced on dim 1 over 2 ranks; pos 1 holds
        // columns 2..4.
        let local = Tensor::from_f32([2, 2], DType::F32, &[2.0, 3.0, 6.0, 7.0]).unwrap();
        let v = DistValue {
            global_shape: Shape::from([2, 4]),
            layout: Layout::sliced(1),
            local,
            pos: 1,
            group_size: 2,
        };
        // Local (0,0) -> global (0,2) = flat 2.
        assert_eq!(v.global_index(0), 2);
        // Local (1,1) -> global (1,3) = flat 7.
        assert_eq!(v.global_index(3), 7);
        assert_eq!(v.read_global(2), 2.0);
        assert_eq!(v.read_global(7), 7.0);
    }

    #[test]
    fn local_shapes() {
        let g = Shape::from([4, 6]);
        assert_eq!(
            DistValue::local_shape(&g, Layout::Replicated, 2),
            Shape::from([4, 6])
        );
        assert_eq!(
            DistValue::local_shape(&g, Layout::sliced_flat(), 2),
            Shape::from([12])
        );
        assert_eq!(
            DistValue::local_shape(&g, Layout::sliced(1), 2),
            Shape::from([4, 3])
        );
    }

    #[test]
    fn roundtrip_global_local() {
        // global_index and read_global agree for every layout.
        let global = Tensor::from_fn([4, 4], DType::F32, |i| i as f32);
        for layout in [Layout::sliced_flat(), Layout::sliced(0), Layout::sliced(1)] {
            for pos in 0..2 {
                let lshape = DistValue::local_shape(global.shape(), layout, 2);
                let mut local = Tensor::zeros(lshape.clone(), DType::F32);
                let mut v = DistValue {
                    global_shape: global.shape().clone(),
                    layout,
                    local: local.clone(),
                    pos,
                    group_size: 2,
                };
                for l in 0..lshape.numel() {
                    local.set(l, global.get(v.global_index(l)));
                }
                v.local = local;
                for l in 0..lshape.numel() {
                    let g = v.global_index(l);
                    assert_eq!(v.read_global(g), global.get(g), "{layout} pos {pos}");
                }
            }
        }
    }
}
