//! # coconet-runtime
//!
//! Functional distributed runtime for the CoCoNet reproduction: rank
//! threads, a message fabric, NCCL-style ring collectives with real
//! data movement, and an SPMD interpreter for DSL programs.
//!
//! The paper's generated kernels run on GPU clusters; this runtime
//! executes the *same programs* (before and after transformation) on
//! CPU threads so the "semantics preserving" claim of §3 is machine
//! checked: a transformed program must produce the same tensors as the
//! original, up to FP16 rounding.
//!
//! Data movement is both minimized and measured: sends transfer
//! copy-on-write buffer handles, collectives reduce received chunks in
//! place, and every [`RankComm`] carries a [`BytesLedger`] whose wire
//! and allocation counters let tests assert a collective moved exactly
//! its analytic volume and copied nothing beyond it.
//!
//! # Examples
//!
//! ```
//! use coconet_core::{Binding, DType, Layout, Program, ReduceOp};
//! use coconet_runtime::{run_program, Inputs, RunOptions};
//! use coconet_tensor::Tensor;
//!
//! // avg = AllReduce(g) over 4 ranks.
//! let mut p = Program::new("avg");
//! let g = p.input("g", DType::F32, ["N"], Layout::Local);
//! let s = p.all_reduce(ReduceOp::Sum, g)?;
//! p.set_name(s, "sum")?;
//! p.set_io(&[g], &[s])?;
//!
//! let binding = Binding::new(4).bind("N", 8);
//! let inputs = Inputs::new().per_rank(
//!     "g",
//!     (0..4).map(|r| Tensor::full([8], DType::F32, r as f32)).collect(),
//! );
//! let result = run_program(&p, &binding, &inputs, RunOptions::default())?;
//! assert_eq!(result.global("sum")?.get(0), 6.0); // 0+1+2+3
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod collectives;
mod comm;
mod compressed;
mod dist;
mod error;
mod executor;
mod hierarchical;
mod ledger;
mod overlap_exec;
mod scattered;
mod stream;
mod switch;
mod tree;

pub use collectives::{
    all_reduce_scalar, broadcast, chunk_range, clamp_channels, reduce, ring_all_gather,
    ring_all_gather_wire, ring_all_gather_wire_striped, ring_all_reduce, ring_all_reduce_wire,
    ring_all_reduce_wire_striped, ring_reduce_scatter, ring_reduce_scatter_wire,
    ring_reduce_scatter_wire_striped, Group, MAX_CHANNELS,
};
pub use comm::{run_ranks, RankComm, WireMsg};
pub use compressed::{
    all_reduce_wire, all_reduce_wire_striped, resolve_all_reduce_format, sparse_all_reduce,
};
pub use dist::DistValue;
pub use error::RuntimeError;
pub use executor::{run_program, run_program_iterations, InitValue, Inputs, RunOptions, RunResult};
pub use hierarchical::{
    hierarchical_all_gather, hierarchical_all_gather_wire, hierarchical_all_gather_wire_striped,
    hierarchical_all_reduce, hierarchical_all_reduce_wire, hierarchical_all_reduce_wire_striped,
    hierarchical_reduce_scatter, hierarchical_reduce_scatter_wire,
    hierarchical_reduce_scatter_wire_striped,
};
pub use ledger::{
    ring_all_reduce_wire_bytes, switch_all_reduce_wire_bytes, top_k_all_reduce_wire_bytes,
    BytesLedger, PRIORITY_CLASSES,
};
pub use overlap_exec::{overlapped_matmul_all_reduce, production_order};
pub use scattered::{BucketTable, ScatteredTensors, BUCKET_ELEMS};
pub use stream::{CommScheduler, Completion, RingJob, StreamExecutor, SwitchJob};
pub use switch::switch_all_reduce;
pub use tree::{tree_all_reduce, tree_all_reduce_wire, tree_all_reduce_wire_striped};
