//! Scattered-tensor support (§5.4).
//!
//! Machine learning frameworks allocate each layer's parameters and
//! gradients in separate, non-contiguous buffers. Rather than copying
//! them into one large buffer before a collective (the NV-BERT /
//! Horovod approach), CoCoNet's generated kernel walks a *bucket
//! table*: every tensor is divided into buckets of at most 2^10
//! elements, buckets are assigned to warps round-robin, and each bucket
//! record stores `(tensor, offset)` so a warp can index its elements
//! directly.
//!
//! This module reproduces that mechanism functionally: a
//! [`ScatteredTensors`] view behaves like one flat tensor for the ring
//! collectives while reading/writing through the bucket table into the
//! original buffers.

use coconet_tensor::{DType, Tensor, TensorError};

/// Bucket granularity: at most 2^10 elements (§5.4).
pub const BUCKET_ELEMS: usize = 1 << 10;

/// One bucket record: which tensor it belongs to and the element
/// offset within that tensor (the paper stores a 64-bit address and a
/// 32-bit offset; 12 bytes per bucket).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Bucket {
    tensor: usize,
    offset: usize,
    len: usize,
}

/// The bucket table over a set of non-contiguous tensors.
#[derive(Clone, Debug)]
pub struct BucketTable {
    buckets: Vec<Bucket>,
    total_elems: usize,
}

impl BucketTable {
    /// Builds the table for the given tensor sizes ("this bucketing is
    /// done only once on the CPU", §5.4).
    pub fn new(sizes: &[usize]) -> BucketTable {
        let mut buckets = Vec::new();
        let mut total = 0usize;
        for (t, &n) in sizes.iter().enumerate() {
            let mut off = 0;
            while off < n {
                let len = BUCKET_ELEMS.min(n - off);
                buckets.push(Bucket {
                    tensor: t,
                    offset: off,
                    len,
                });
                off += len;
            }
            total += n;
        }
        BucketTable {
            buckets,
            total_elems: total,
        }
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total elements across all tensors.
    pub fn total_elems(&self) -> usize {
        self.total_elems
    }

    /// Extra memory the table needs, in bytes (12 per bucket, §5.4).
    pub fn table_bytes(&self) -> usize {
        12 * self.buckets.len()
    }

    /// Maps a flat element index to `(tensor, element)` — the lookup a
    /// warp performs for its assigned bucket.
    pub fn locate(&self, flat: usize) -> (usize, usize) {
        debug_assert!(flat < self.total_elems);
        // Buckets are uniform except the last of each tensor; a direct
        // division gets the candidate, then a short scan fixes up
        // boundary buckets — mirroring the O(1) warp lookup.
        let mut idx = (flat / BUCKET_ELEMS).min(self.buckets.len() - 1);
        let mut start = self.bucket_start(idx);
        while flat < start {
            idx -= 1;
            start = self.bucket_start(idx);
        }
        while flat >= start + self.buckets[idx].len {
            start += self.buckets[idx].len;
            idx += 1;
        }
        let b = self.buckets[idx];
        (b.tensor, b.offset + (flat - start))
    }

    fn bucket_start(&self, idx: usize) -> usize {
        // Start of bucket idx in flat order. Buckets before idx are all
        // full except possibly tails; compute by summing — cached in
        // real code, small here.
        self.buckets[..idx].iter().map(|b| b.len).sum()
    }
}

/// A flat view over non-contiguous tensors, usable with the ring
/// collectives without any gather/scatter copies.
#[derive(Clone, Debug)]
pub struct ScatteredTensors {
    tensors: Vec<Tensor>,
    table: BucketTable,
    dtype: DType,
}

impl ScatteredTensors {
    /// Wraps a set of tensors (all must share a dtype).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] when dtypes differ and
    /// [`TensorError::DataLength`] for an empty set.
    pub fn new(tensors: Vec<Tensor>) -> Result<ScatteredTensors, TensorError> {
        let first = tensors.first().ok_or(TensorError::DataLength {
            expected: 1,
            actual: 0,
        })?;
        let dtype = first.dtype();
        for t in &tensors {
            if t.dtype() != dtype {
                return Err(TensorError::DTypeMismatch {
                    expected: dtype,
                    actual: t.dtype(),
                });
            }
        }
        let sizes: Vec<usize> = tensors.iter().map(Tensor::numel).collect();
        Ok(ScatteredTensors {
            tensors,
            table: BucketTable::new(&sizes),
            dtype,
        })
    }

    /// The bucket table.
    pub fn table(&self) -> &BucketTable {
        &self.table
    }

    /// Total elements across all tensors.
    pub fn numel(&self) -> usize {
        self.table.total_elems()
    }

    /// Reads the flat element `i` through the bucket table.
    pub fn get(&self, i: usize) -> f32 {
        let (t, e) = self.table.locate(i);
        self.tensors[t].get(e)
    }

    /// Writes the flat element `i` through the bucket table.
    pub fn set(&mut self, i: usize, v: f32) {
        let (t, e) = self.table.locate(i);
        self.tensors[t].set(e, v);
    }

    /// Materializes the flat range `start..start+len` as a 1-D tensor
    /// (a communication chunk).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SliceOutOfRange`] for bad ranges.
    pub fn slice_flat(&self, start: usize, len: usize) -> Result<Tensor, TensorError> {
        if start + len > self.numel() {
            return Err(TensorError::SliceOutOfRange {
                dim: 0,
                start,
                len,
                extent: self.numel(),
            });
        }
        Ok(Tensor::from_fn([len], self.dtype, |i| self.get(start + i)))
    }

    /// Writes a chunk back into the flat range starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SliceOutOfRange`] for bad ranges.
    pub fn write_flat(&mut self, start: usize, chunk: &Tensor) -> Result<(), TensorError> {
        if start + chunk.numel() > self.numel() {
            return Err(TensorError::SliceOutOfRange {
                dim: 0,
                start,
                len: chunk.numel(),
                extent: self.numel(),
            });
        }
        for i in 0..chunk.numel() {
            self.set(start + i, chunk.get(i));
        }
        Ok(())
    }

    /// Reduces a received chunk into the flat range starting at
    /// `start`, in place through the bucket table — the scattered
    /// counterpart of [`Tensor::reduce_flat`], so a ring step over
    /// scattered gradients updates the original layer buffers directly
    /// instead of slicing a copy out and writing it back.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SliceOutOfRange`] for bad ranges.
    pub fn reduce_flat(
        &mut self,
        start: usize,
        incoming: &Tensor,
        op: coconet_tensor::ReduceOp,
    ) -> Result<(), TensorError> {
        if start + incoming.numel() > self.numel() {
            return Err(TensorError::SliceOutOfRange {
                dim: 0,
                start,
                len: incoming.numel(),
                extent: self.numel(),
            });
        }
        for i in 0..incoming.numel() {
            let (t, e) = self.table.locate(start + i);
            let folded = op.apply(self.tensors[t].get(e), incoming.get(i));
            self.tensors[t].set(e, folded);
        }
        Ok(())
    }

    /// Unwraps the underlying tensors.
    pub fn into_tensors(self) -> Vec<Tensor> {
        self.tensors
    }

    /// Borrows the underlying tensors.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_table_counts() {
        // BERT-like: many tensors of uneven sizes.
        let table = BucketTable::new(&[5, 1024, 1030, 3]);
        // 5 -> 1 bucket, 1024 -> 1, 1030 -> 2, 3 -> 1.
        assert_eq!(table.n_buckets(), 5);
        assert_eq!(table.total_elems(), 5 + 1024 + 1030 + 3);
        assert_eq!(table.table_bytes(), 60);
    }

    #[test]
    fn locate_crosses_tensor_boundaries() {
        let table = BucketTable::new(&[5, 10]);
        assert_eq!(table.locate(0), (0, 0));
        assert_eq!(table.locate(4), (0, 4));
        assert_eq!(table.locate(5), (1, 0));
        assert_eq!(table.locate(14), (1, 9));
    }

    #[test]
    fn memory_overhead_is_small_for_bert() {
        // "for BERT model with 334M elements, the memory requirement is
        // 0.6%" of... the bucket table against the gradient bytes.
        let n: usize = 334_000_000;
        let table = BucketTable::new(&[n]);
        let overhead = table.table_bytes() as f64 / (n as f64 * 2.0); // FP16 grads
        assert!(overhead < 0.006, "overhead = {overhead}");
    }

    #[test]
    fn scattered_view_reads_and_writes() {
        let a = Tensor::from_fn([3], DType::F32, |i| i as f32);
        let b = Tensor::from_fn([4], DType::F32, |i| 10.0 + i as f32);
        let mut s = ScatteredTensors::new(vec![a, b]).unwrap();
        assert_eq!(s.numel(), 7);
        assert_eq!(s.get(2), 2.0);
        assert_eq!(s.get(3), 10.0);
        s.set(5, 99.0);
        assert_eq!(s.tensors()[1].get(2), 99.0);
        let chunk = s.slice_flat(2, 3).unwrap();
        assert_eq!(chunk.to_f32_vec(), vec![2.0, 10.0, 11.0]);
        s.write_flat(0, &Tensor::full([2], DType::F32, -1.0))
            .unwrap();
        assert_eq!(s.tensors()[0].get(0), -1.0);
        assert!(s.slice_flat(6, 3).is_err());
    }

    #[test]
    fn reduce_flat_folds_in_place_across_tensor_boundaries() {
        use coconet_tensor::ReduceOp;
        let a = Tensor::from_fn([3], DType::F32, |i| i as f32);
        let b = Tensor::from_fn([4], DType::F32, |i| 10.0 + i as f32);
        let mut s = ScatteredTensors::new(vec![a, b]).unwrap();
        // Fold [5, 5, 5] into flat range 2..5 (crosses the boundary).
        let incoming = Tensor::full([3], DType::F32, 5.0);
        s.reduce_flat(2, &incoming, ReduceOp::Sum).unwrap();
        assert_eq!(s.tensors()[0].get(2), 7.0);
        assert_eq!(s.tensors()[1].get(0), 15.0);
        assert_eq!(s.tensors()[1].get(1), 16.0);
        assert_eq!(s.tensors()[1].get(2), 12.0, "outside the range");
        assert!(s.reduce_flat(6, &incoming, ReduceOp::Sum).is_err());
    }

    #[test]
    fn rejects_mixed_dtypes_and_empty() {
        let a = Tensor::zeros([2], DType::F32);
        let h = Tensor::zeros([2], DType::F16);
        assert!(ScatteredTensors::new(vec![a, h]).is_err());
        assert!(ScatteredTensors::new(vec![]).is_err());
    }

    proptest! {
        /// The flat view is a bijection onto the concatenated tensors.
        #[test]
        fn flat_view_matches_concatenation(
            sizes in prop::collection::vec(1usize..2000, 1..6)
        ) {
            let tensors: Vec<Tensor> = sizes
                .iter()
                .enumerate()
                .map(|(t, &n)| Tensor::from_fn([n], DType::F32, move |i| (t * 10000 + i) as f32))
                .collect();
            let expected: Vec<f32> =
                tensors.iter().flat_map(|t| t.to_f32_vec()).collect();
            let s = ScatteredTensors::new(tensors).unwrap();
            prop_assert_eq!(s.numel(), expected.len());
            for (i, &e) in expected.iter().enumerate() {
                prop_assert_eq!(s.get(i), e);
            }
        }
    }
}
