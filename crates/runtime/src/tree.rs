//! Tree collectives — the second logical topology NCCL builds (§5.1:
//! "NCCL creates logical topologies, such as ring and tree, over the
//! underlying interconnect network").
//!
//! Trees trade bandwidth for latency: a binomial-tree AllReduce takes
//! `2·log2(k)` hops instead of the ring's `2(k-1)` steps, which wins
//! for small messages at large rank counts — one of the effects behind
//! the paper's protocol/size crossovers. The generated kernels in the
//! paper use rings; this module is the reproduction's implementation of
//! the tree alternative, used by the ring-vs-tree ablation.

use coconet_compress::WireFormat;
use coconet_tensor::{ReduceOp, Tensor};

use crate::collectives::{
    clamp_channels, recv_striped, send_striped, wire_decode, wire_encode, Group,
};
use crate::RankComm;

/// Binomial-tree Reduce to group position 0, then binomial Broadcast —
/// an AllReduce in `2·ceil(log2(k))` rounds.
pub fn tree_all_reduce(comm: &RankComm, group: Group, input: &Tensor, op: ReduceOp) -> Tensor {
    tree_all_reduce_wire(comm, group, input, op, WireFormat::Dense)
}

/// [`tree_all_reduce`] with every payload encoded per `wire`. Under
/// FP16 each reduce-phase partial rounds to half precision as it
/// travels, and the root rounds its final value once before the
/// broadcast so every rank (the root included) returns the identical
/// decoded tensor — the all-ranks-agree postcondition the dense tree
/// has. The dense wire is byte- and allocation-identical to
/// [`tree_all_reduce`].
pub fn tree_all_reduce_wire(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
) -> Tensor {
    tree_all_reduce_wire_striped(comm, group, input, op, wire, 1)
}

/// [`tree_all_reduce_wire`] with every hop's payload split into
/// `channels` contiguous lane stripes (zero-copy views of the encoded
/// buffer, so the wire byte total is unchanged and the result is
/// bit-identical at every width — stripes reassemble before each fold
/// and each decode). `channels <= 1` sends whole payloads.
pub fn tree_all_reduce_wire_striped(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
    wire: WireFormat,
    channels: usize,
) -> Tensor {
    let channels = clamp_channels(channels);
    let k = group.size;
    let pos = group.position(comm.rank());
    let dtype = input.dtype();
    // A handle copy; the first in-place reduction detaches it.
    let mut acc = input.clone();

    // Reduce phase: at round d (1, 2, 4, ...), positions with the d bit
    // set send to (pos - d) and drop out; the rest receive and reduce.
    let mut d = 1usize;
    while d < k {
        if pos & d != 0 {
            send_striped(
                comm,
                group.rank_at(pos - d),
                wire_encode(&acc, wire),
                channels,
            );
            break;
        } else if pos + d < k {
            let incoming = wire_decode(
                recv_striped(comm, group.rank_at(pos + d), channels),
                wire,
                dtype,
            );
            acc.reduce_assign(&incoming, op)
                .expect("tree peers agree on geometry");
        }
        d <<= 1;
    }

    // Broadcast phase: mirror image, highest round first. The value
    // travels in wire encoding the whole way down (forwards are handle
    // copies of the encoded buffer) and every rank decodes at the end;
    // the root's once-through-the-codec round trip makes its value
    // bit-identical to everyone else's.
    if pos == 0 {
        acc = wire_encode(&acc, wire);
    }
    let mut rounds = Vec::new();
    let mut e = 1usize;
    while e < k {
        rounds.push(e);
        e <<= 1;
    }
    for &d in rounds.iter().rev() {
        if pos & d != 0 {
            // This position received its reduced value in the reduce
            // phase partner's broadcast round.
            if pos & (d - 1) == 0 {
                acc = recv_striped(comm, group.rank_at(pos - d), channels);
            }
        } else if pos + d < k && pos & (d - 1) == 0 {
            send_striped(comm, group.rank_at(pos + d), acc.clone(), channels);
        }
    }
    wire_decode(acc, wire, dtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_tensor::DType;
    use std::thread;

    fn run_tree(k: usize) -> Vec<Tensor> {
        let world = RankComm::world(k);
        let handles: Vec<_> = world
            .into_iter()
            .map(|comm| {
                thread::spawn(move || {
                    let group = Group { start: 0, size: k };
                    let input =
                        Tensor::from_fn([10], DType::F32, |i| ((comm.rank() + 1) * (i + 1)) as f32);
                    tree_all_reduce(&comm, group, &input, ReduceOp::Sum)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn tree_allreduce_matches_expected_sum() {
        for k in [1usize, 2, 3, 4, 5, 7, 8] {
            let results = run_tree(k);
            let rank_sum: usize = (1..=k).sum();
            for (r, t) in results.iter().enumerate() {
                for i in 0..10 {
                    assert_eq!(
                        t.get(i),
                        (rank_sum * (i + 1)) as f32,
                        "k={k} rank={r} elem={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_matches_ring() {
        let k = 8;
        let world = RankComm::world(k);
        let handles: Vec<_> = world
            .into_iter()
            .map(|comm| {
                thread::spawn(move || {
                    let group = Group { start: 0, size: k };
                    let input =
                        Tensor::from_fn([13], DType::F32, |i| (comm.rank() * 31 + i * 7) as f32);
                    let tree = tree_all_reduce(&comm, group, &input, ReduceOp::Sum);
                    let ring = crate::ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
                    (tree, ring)
                })
            })
            .collect();
        for h in handles {
            let (tree, ring) = h.join().unwrap();
            assert_eq!(tree.to_f32_vec(), ring.to_f32_vec());
        }
    }

    #[test]
    fn tree_min_max() {
        let k = 4;
        let world = RankComm::world(k);
        let handles: Vec<_> = world
            .into_iter()
            .map(|comm| {
                thread::spawn(move || {
                    let group = Group { start: 0, size: k };
                    let input = Tensor::full([3], DType::F32, comm.rank() as f32);
                    let mn = tree_all_reduce(&comm, group, &input, ReduceOp::Min);
                    let mx = tree_all_reduce(&comm, group, &input, ReduceOp::Max);
                    (mn, mx)
                })
            })
            .collect();
        for h in handles {
            let (mn, mx) = h.join().unwrap();
            assert_eq!(mn.get(0), 0.0);
            assert_eq!(mx.get(0), 3.0);
        }
    }
}
