//! Tracing must be a pure observer: running the streaming executor
//! with span recording enabled has to produce bit-identical outputs,
//! final parameters, and ledger counters (aggregate, per-class, and
//! switch-attributed) versus a run with tracing disabled — across
//! collective algorithms, wire formats, and schedules. On top of
//! neutrality, the emitted traces themselves must be well formed:
//! spans properly nested, per-thread timestamps monotone, and every
//! scheduler enqueue matched by a completion.

use coconet_compress::WireFormat;
use coconet_core::{CollAlgo, CommSched, XferSched};
use coconet_runtime::{run_ranks, BytesLedger, Group, StreamExecutor};
use coconet_tensor::{DType, Tensor};
use coconet_trace as trace;
use proptest::prelude::*;
use std::sync::Mutex;

/// The enable flag is process-global, so tests that toggle it must not
/// interleave — everything funnels through this gate.
static GATE: Mutex<()> = Mutex::new(());

/// One full observable outcome of a rank: final parameters, the
/// completion-id sequence, and the complete byte ledger.
type RankOutcome = (Vec<Tensor>, Vec<u64>, BytesLedger);

/// Runs the streaming training loop at the given configuration and
/// returns every rank's outcome.
fn run_loop(
    algo: CollAlgo,
    wire: WireFormat,
    sched: CommSched,
    channels: usize,
    xfer: XferSched,
) -> Vec<RankOutcome> {
    let k = 4usize;
    let layers = 3usize;
    let iters = 3u64;
    run_ranks(k, move |comm| {
        let rank = comm.rank();
        let params: Vec<Tensor> = (0..layers)
            .map(|l| Tensor::from_fn([19], DType::F32, move |i| (l * 31 + i) as f32 * 0.01))
            .collect();
        let mut exec = StreamExecutor::new(Group { start: 0, size: k }, params, sched, wire)
            .with_algo(algo)
            .with_channels(channels)
            .with_xfer(xfer);
        exec.run_iterations(
            &comm,
            iters,
            |_, _, _| {},
            move |l, iter, p| {
                Tensor::from_fn([19], DType::F32, |i| {
                    p.get(i) * 0.05
                        + l as f32
                        + iter as f32 * 0.1
                        + rank as f32 * 0.01
                        + i as f32 * 0.001
                })
            },
            |_, p, g| {
                let stepped = Tensor::from_fn([19], DType::F32, |i| p.get(i) - 0.1 * g.get(i));
                *p = stepped;
            },
        );
        (exec.params(), exec.completion_log(), comm.ledger())
    })
}

fn assert_outcomes_identical(untraced: &[RankOutcome], traced: &[RankOutcome]) {
    assert_eq!(untraced.len(), traced.len());
    for (rank, ((pu, lu, bu), (pt, lt, bt))) in untraced.iter().zip(traced).enumerate() {
        assert_eq!(lu, lt, "rank {rank}: completion order perturbed");
        assert_eq!(bu, bt, "rank {rank}: ledger counters perturbed");
        assert_eq!(pu.len(), pt.len());
        for (l, (a, b)) in pu.iter().zip(pt).enumerate() {
            let (av, bv) = (a.to_f32_vec(), b.to_f32_vec());
            let bits_equal =
                av.len() == bv.len() && av.iter().zip(&bv).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "rank {rank} layer {l}: parameters perturbed");
        }
    }
}

/// The configuration grid the neutrality property samples from.
const CONFIGS: &[(CollAlgo, WireFormat, CommSched, usize, XferSched)] = &[
    (
        CollAlgo::Ring,
        WireFormat::Dense,
        CommSched::Priority,
        1,
        XferSched::Fifo,
    ),
    (
        CollAlgo::Ring,
        WireFormat::Dense,
        CommSched::Barriered,
        1,
        XferSched::Fifo,
    ),
    (
        CollAlgo::Ring,
        WireFormat::Fp16,
        CommSched::Priority,
        1,
        XferSched::Aware,
    ),
    (
        CollAlgo::Ring,
        WireFormat::Dense,
        CommSched::Priority,
        4,
        XferSched::Fifo,
    ),
    (
        CollAlgo::Ring,
        WireFormat::Fp16,
        CommSched::Barriered,
        2,
        XferSched::Aware,
    ),
    (
        CollAlgo::Switch,
        WireFormat::Dense,
        CommSched::Priority,
        1,
        XferSched::Fifo,
    ),
    (
        CollAlgo::Switch,
        WireFormat::Dense,
        CommSched::Barriered,
        1,
        XferSched::Fifo,
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(7))]

    /// Bit-identical outputs, parameters, and ledgers (including
    /// per-class byte counters) with tracing enabled vs. disabled,
    /// across algorithms, wire formats, schedules, lane widths, and
    /// transfer disciplines.
    #[test]
    fn tracing_is_observationally_neutral(case in 0usize..CONFIGS.len()) {
        let (algo, wire, sched, channels, xfer) = CONFIGS[case];
        let _gate = GATE.lock().unwrap();
        trace::set_enabled(false);
        let untraced = run_loop(algo, wire, sched, channels, xfer);
        trace::clear();
        trace::set_enabled(true);
        let traced = run_loop(algo, wire, sched, channels, xfer);
        trace::set_enabled(false);
        trace::clear();
        assert_outcomes_identical(&untraced, &traced);
    }
}

/// A traced priority-schedule run produces a well-formed trace: spans
/// nested per thread, record timestamps monotone, every scheduler
/// enqueue matched by a completion — and the structured completion
/// events agree with the compatibility id log.
#[test]
fn priority_run_emits_a_well_formed_trace() {
    let _gate = GATE.lock().unwrap();
    trace::clear();
    trace::set_enabled(true);
    let outcomes = run_loop(
        CollAlgo::Ring,
        WireFormat::Dense,
        CommSched::Priority,
        2,
        XferSched::Fifo,
    );
    trace::set_enabled(false);
    let events = trace::take_snapshot();
    trace::clear();

    assert!(!outcomes.is_empty());
    assert!(
        events.iter().any(|e| e.kind == trace::EventKind::Hop),
        "no hop events recorded"
    );
    assert!(
        events.iter().any(|e| e.kind == trace::EventKind::Compute),
        "no compute spans recorded"
    );
    trace::wellformed::check_well_formed(&events).expect("trace well-formed");
}

/// The structured completion events carry the same id sequence as the
/// compatibility log, monotone timestamps, and the enqueue classes.
#[test]
fn completion_events_match_the_id_log() {
    use coconet_runtime::CommScheduler;
    use coconet_tensor::ReduceOp;

    let _gate = GATE.lock().unwrap();
    trace::set_enabled(false);
    let results = run_ranks(4, |comm| {
        let group = Group { start: 0, size: 4 };
        let a = Tensor::from_fn([13], DType::F32, |i| (comm.rank() + i) as f32);
        let b = Tensor::from_fn([13], DType::F32, |i| (comm.rank() * 3 + i) as f32);
        let mut sched = CommScheduler::new();
        sched.enqueue(10, 5, group, &a, ReduceOp::Sum, WireFormat::Dense);
        sched.enqueue(20, 0, group, &b, ReduceOp::Sum, WireFormat::Dense);
        sched.drain(&comm);
        let ids = sched.completion_log();
        let events: Vec<(u64, u8, u64)> = sched
            .completion_events()
            .iter()
            .map(|c| (c.id, c.class, c.ts_ns))
            .collect();
        (ids, events)
    });
    for (ids, events) in results {
        assert_eq!(ids, vec![20, 10], "priority order");
        assert_eq!(
            ids,
            events.iter().map(|&(id, _, _)| id).collect::<Vec<_>>(),
            "structured events and id log agree"
        );
        assert_eq!(events[0].1, 0, "urgent job completed at class 0");
        assert_eq!(events[1].1, 5, "late job completed at class 5");
        assert!(events[0].2 <= events[1].2, "timestamps monotone");
    }
}
