//! GPU memory model for data-parallel training (Table 4).
//!
//! The headline shape of Table 4 is memory-driven: who goes out of
//! memory, and which micro batch fits. Mixed-precision training stores
//! FP16 parameters and gradients plus FP32 optimizer state (master
//! weights, momentum, velocity = 12 bytes/param); baselines replicate
//! the state on every GPU while ZeRO (Adam only) and CoCoNet shard it
//! across all ranks. NV-BERT additionally allocates a contiguous
//! gradient buffer for its single AllReduce.

use crate::{ModelConfig, Optimizer};

/// The data-parallel training implementations compared in Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// NVIDIA BERT scripts: replicated state + contiguous grad buffer.
    NvBert,
    /// PyTorch DDP: replicated state + 25 MB gradient buckets.
    PyTorchDdp,
    /// ZeRO: sharded optimizer state for Adam; LAMB state cannot be
    /// sharded (§6.1.2 — "significant engineering efforts are required
    /// ... in a distributed LAMB implementation").
    Zero,
    /// CoCoNet's scattered-tensor `fuse(RS-Opt-AG)`: sharded state, no
    /// contiguous buffer.
    CoCoNet,
}

impl Strategy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::NvBert => "NV BERT",
            Strategy::PyTorchDdp => "PyTorch DDP",
            Strategy::Zero => "ZeRO",
            Strategy::CoCoNet => "CoCoNet",
        }
    }

    /// All strategies in Table 4 column order.
    pub const ALL: [Strategy; 4] = [
        Strategy::NvBert,
        Strategy::PyTorchDdp,
        Strategy::Zero,
        Strategy::CoCoNet,
    ];
}

/// Memory-model constants (bytes). Calibrated in DESIGN.md.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Usable GPU memory (32 GiB on a V100-32GB).
    pub gpu_bytes: f64,
    /// Framework/context/workspace overhead per GPU.
    pub framework_overhead: f64,
    /// Activation bytes per sample: `alpha * S * H * L * 2` for the
    /// linear terms…
    pub act_alpha: f64,
    /// …plus `beta * S^2 * heads * L * 2` for attention scores.
    pub act_beta: f64,
}

impl Default for MemoryModel {
    fn default() -> MemoryModel {
        MemoryModel {
            gpu_bytes: 32.0 * (1u64 << 30) as f64,
            framework_overhead: 1.5e9,
            act_alpha: 12.0,
            act_beta: 0.6,
        }
    }
}

impl MemoryModel {
    /// Activation bytes for one sample of `cfg` at sequence length `seq`
    /// (gradient checkpointing at transformer-block granularity).
    pub fn activation_bytes_per_sample(&self, cfg: &ModelConfig, seq: usize) -> f64 {
        let l = cfg.layers as f64;
        let linear = self.act_alpha * seq as f64 * cfg.hidden as f64;
        let scores = self.act_beta * (seq as f64).powi(2) * cfg.heads as f64;
        (linear + scores) * l * 2.0
    }

    /// Fixed (batch-independent) memory for a strategy: parameters,
    /// gradients, optimizer state (replicated or sharded), buffers.
    pub fn fixed_bytes(
        &self,
        cfg: &ModelConfig,
        opt: Optimizer,
        strategy: Strategy,
        ranks: usize,
    ) -> f64 {
        let params = cfg.params() as f64;
        let p16 = 2.0 * params;
        let g16 = 2.0 * params;
        let state = 12.0 * params; // fp32 master + m + v
        let state_sharded = state / ranks as f64;
        let base = p16 + g16 + self.framework_overhead;
        match (strategy, opt) {
            (Strategy::NvBert, _) => base + state + g16, // contiguous grad buffer
            (Strategy::PyTorchDdp, _) => base + state + 25e6 * 2.0, // two live buckets
            (Strategy::Zero, Optimizer::Adam) => base + state_sharded,
            (Strategy::Zero, Optimizer::Lamb) => base + state, // cannot shard LAMB
            (Strategy::CoCoNet, _) => base + state_sharded,    // scattered tensors: no copy buffer
        }
    }

    /// The largest power-of-two micro batch that fits, additionally
    /// capped by the per-GPU share of the global batch. `None` means
    /// batch 1 does not fit (Table 4's OOM).
    pub fn max_micro_batch(
        &self,
        cfg: &ModelConfig,
        opt: Optimizer,
        strategy: Strategy,
        ranks: usize,
        global_batch: usize,
    ) -> Option<usize> {
        let fixed = self.fixed_bytes(cfg, opt, strategy, ranks);
        let act = self.activation_bytes_per_sample(cfg, cfg.seq);
        let budget = self.gpu_bytes - fixed;
        if budget < act {
            return None;
        }
        let mem_max = (budget / act) as usize;
        let cap = (global_batch / ranks).max(1);
        let mut batch = 1usize;
        while batch * 2 <= mem_max.min(cap) {
            batch *= 2;
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANKS: usize = 256;

    fn model() -> MemoryModel {
        MemoryModel::default()
    }

    #[test]
    fn table4_adam_micro_batches() {
        let m = model();
        // 336M: everyone reaches the global-batch cap of 32.
        for s in Strategy::ALL {
            assert_eq!(
                m.max_micro_batch(&ModelConfig::bert_336m(), Optimizer::Adam, s, RANKS, 8192),
                Some(32),
                "{}",
                s.name()
            );
        }
        // 1.2B: replicated state forces NV/DDP down to 8; sharded state
        // allows 32.
        let cfg = ModelConfig::bert_1_2b();
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::NvBert, RANKS, 8192),
            Some(8)
        );
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::PyTorchDdp, RANKS, 8192),
            Some(8)
        );
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::Zero, RANKS, 8192),
            Some(32)
        );
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::CoCoNet, RANKS, 8192),
            Some(32)
        );
        // 3.9B: NV/DDP go OOM; ZeRO and CoCoNet train at micro batch 8.
        let cfg = ModelConfig::bert_3_9b();
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::NvBert, RANKS, 8192),
            None
        );
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::PyTorchDdp, RANKS, 8192),
            None
        );
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::Zero, RANKS, 8192),
            Some(8)
        );
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Adam, Strategy::CoCoNet, RANKS, 8192),
            Some(8)
        );
    }

    #[test]
    fn table4_lamb_zero_cannot_shard() {
        let m = model();
        // 3.9B LAMB: only CoCoNet trains (ZeRO cannot shard LAMB state).
        let cfg = ModelConfig::bert_3_9b();
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Lamb, Strategy::Zero, RANKS, 65536),
            None
        );
        assert_eq!(
            m.max_micro_batch(&cfg, Optimizer::Lamb, Strategy::CoCoNet, RANKS, 65536),
            Some(8)
        );
        // 1.2B LAMB: CoCoNet's sharded state allows a much larger micro
        // batch than the replicated-state baselines.
        let cfg = ModelConfig::bert_1_2b();
        let coconet = m
            .max_micro_batch(&cfg, Optimizer::Lamb, Strategy::CoCoNet, RANKS, 65536)
            .unwrap();
        let nv = m
            .max_micro_batch(&cfg, Optimizer::Lamb, Strategy::NvBert, RANKS, 65536)
            .unwrap();
        assert!(coconet >= 4 * nv, "coconet {coconet} vs nv {nv}");
    }

    #[test]
    fn sharding_saves_state_memory() {
        let m = model();
        let cfg = ModelConfig::bert_1_2b();
        let replicated = m.fixed_bytes(&cfg, Optimizer::Adam, Strategy::NvBert, RANKS);
        let sharded = m.fixed_bytes(&cfg, Optimizer::Adam, Strategy::CoCoNet, RANKS);
        // 12 bytes/param of state plus the 2 bytes/param copy buffer.
        let params = cfg.params() as f64;
        assert!(replicated - sharded > 13.0 * params);
    }

    #[test]
    fn activation_model_scales() {
        let m = model();
        let small = m.activation_bytes_per_sample(&ModelConfig::bert_336m(), 512);
        let big = m.activation_bytes_per_sample(&ModelConfig::bert_1_2b(), 512);
        assert!(big > 1.8 * small);
        let short = m.activation_bytes_per_sample(&ModelConfig::bert_336m(), 128);
        assert!(short < small / 3.0);
    }
}
