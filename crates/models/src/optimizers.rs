//! Adam and LAMB parameter-update programs (§4, Figure 6) and their
//! schedules, plus pure-CPU reference implementations for correctness
//! testing.

use coconet_core::xform::{
    as_slice, dead, fuse_all_reduce, fuse_compute, reorder_all_gather, split_all_reduce,
};
use coconet_core::{CoreError, DType, Layout, Program, ReduceOp, VarId};
use coconet_tensor::Tensor;

/// Which optimizer a data-parallel update program implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Optimizer {
    /// Adam (Kingma & Ba).
    Adam,
    /// LAMB (You et al.) — Adam plus trust-ratio layer scaling, which
    /// needs two tensor norms (the embedded reductions of §5.2).
    Lamb,
}

impl Optimizer {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Optimizer::Adam => "Adam",
            Optimizer::Lamb => "LAMB",
        }
    }
}

/// Handles to the interesting variables of an optimizer program.
#[derive(Clone, Debug)]
pub struct OptimizerVars {
    /// The gradient AllReduce.
    pub avg: VarId,
    /// All pointwise computation nodes, in topological order.
    pub comps: Vec<VarId>,
    /// The state tensors that `asSlice` may slice (`m`, `v`).
    pub state: Vec<VarId>,
    /// The parameter update node (`p_`).
    pub p_updated: VarId,
}

/// Hyperparameters shared by the programs and the references.
#[derive(Clone, Copy, Debug)]
pub struct Hyper {
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical epsilon.
    pub eps: f64,
    /// Weight decay (LAMB).
    pub lambda: f64,
}

impl Default for Hyper {
    fn default() -> Hyper {
        Hyper {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-6,
            lambda: 0.01,
        }
    }
}

/// Builds the traditional data-parallel update of Figure 6a: gradients
/// are FP16 and local to each rank; `p`, `m`, `v` are FP32 and
/// replicated (mixed precision).
///
/// # Errors
///
/// Never fails for the fixed program shape; propagates builder errors.
pub fn optimizer_program(
    opt: Optimizer,
    hyper: Hyper,
) -> Result<(Program, OptimizerVars), CoreError> {
    let mut p = Program::new(match opt {
        Optimizer::Adam => "adam",
        Optimizer::Lamb => "lamb",
    });
    let g = p.input("g", DType::F16, ["N"], Layout::Local);
    let param = p.input("p", DType::F32, ["N"], Layout::Replicated);
    let m = p.input("m", DType::F32, ["N"], Layout::Replicated);
    let v = p.input("v", DType::F32, ["N"], Layout::Replicated);
    let lr = p.scalar_input("lr", DType::F32);
    let t = p.scalar_input("t", DType::F32);

    let avg = p.all_reduce(ReduceOp::Sum, g)?;
    p.set_name(avg, "avg")?;

    let mut comps = Vec::new();

    let b1 = p.constant(hyper.beta1);
    let one_minus_b1 = p.constant(1.0 - hyper.beta1);
    let b2 = p.constant(hyper.beta2);
    let one_minus_b2 = p.constant(1.0 - hyper.beta2);
    let eps = p.constant(hyper.eps);

    // m_ = Update(m, m*beta1 + (1-beta1)*avg)
    let m_decay = {
        let node = p.mul(m, b1)?;
        comps.push(node);
        node
    };
    let g_scaled = {
        let node = p.mul(avg, one_minus_b1)?;
        comps.push(node);
        node
    };
    let m_new = {
        let node = p.add(m_decay, g_scaled)?;
        comps.push(node);
        node
    };
    let m_ = {
        let node = p.update(m, m_new)?;
        comps.push(node);
        node
    };
    p.set_name(m_, "m_")?;
    // v_ = Update(v, v*beta2 + (1-beta2)*avg*avg)
    let v_decay = {
        let node = p.mul(v, b2)?;
        comps.push(node);
        node
    };
    let g_sq = {
        let node = p.mul(avg, avg)?;
        comps.push(node);
        node
    };
    let g_sq_scaled = {
        let node = p.mul(g_sq, one_minus_b2)?;
        comps.push(node);
        node
    };
    let v_new = {
        let node = p.add(v_decay, g_sq_scaled)?;
        comps.push(node);
        node
    };
    let v_ = {
        let node = p.update(v, v_new)?;
        comps.push(node);
        node
    };
    p.set_name(v_, "v_")?;
    // Bias correction: m1 = m_/(1 - beta1^t), v1 = v_/(1 - beta2^t).
    let one = p.constant(1.0);
    let b1t = {
        let node = p.pow(b1, t)?;
        comps.push(node);
        node
    };
    let corr1 = {
        let node = p.sub(one, b1t)?;
        comps.push(node);
        node
    };
    let m1 = {
        let node = p.div(m_, corr1)?;
        comps.push(node);
        node
    };
    let b2t = {
        let node = p.pow(b2, t)?;
        comps.push(node);
        node
    };
    let corr2 = {
        let node = p.sub(one, b2t)?;
        comps.push(node);
        node
    };
    let v1 = {
        let node = p.div(v_, corr2)?;
        comps.push(node);
        node
    };

    // update = m1 / (sqrt(v1) + eps) [+ lambda*p for LAMB]
    let sq = {
        let node = p.sqrt(v1)?;
        comps.push(node);
        node
    };
    let denom = {
        let node = p.add(sq, eps)?;
        comps.push(node);
        node
    };
    let mut update = {
        let node = p.div(m1, denom)?;
        comps.push(node);
        node
    };
    if opt == Optimizer::Lamb {
        let lam = p.constant(hyper.lambda);
        let decay = {
            let node = p.mul(param, lam)?;
            comps.push(node);
            node
        };
        update = {
            let node = p.add(update, decay)?;
            comps.push(node);
            node
        };
        p.set_name(update, "update")?;
        // Trust ratio: r1/r2 over tensor norms.
        let r1 = {
            let node = p.norm(param)?;
            comps.push(node);
            node
        };
        p.set_name(r1, "r1")?;
        let r2 = {
            let node = p.norm(update)?;
            comps.push(node);
            node
        };
        p.set_name(r2, "r2")?;
        let ratio = {
            let node = p.div(r1, r2)?;
            comps.push(node);
            node
        };
        let scaled_lr = {
            let node = p.mul(lr, ratio)?;
            comps.push(node);
            node
        };
        let step = {
            let node = p.mul(update, scaled_lr)?;
            comps.push(node);
            node
        };
        let p_new = {
            let node = p.sub(param, step)?;
            comps.push(node);
            node
        };
        let p_ = {
            let node = p.update(param, p_new)?;
            comps.push(node);
            node
        };
        p.set_name(p_, "p_")?;
        p.set_io(&[g, param, m, v, lr, t], &[p_])?;
        return Ok((
            p,
            OptimizerVars {
                avg,
                comps,
                state: vec![m, v],
                p_updated: p_,
            },
        ));
    }
    // Adam: p_ = Update(p, p - lr * update)
    let step = {
        let node = p.mul(update, lr)?;
        comps.push(node);
        node
    };
    let p_new = {
        let node = p.sub(param, step)?;
        comps.push(node);
        node
    };
    let p_ = {
        let node = p.update(param, p_new)?;
        comps.push(node);
        node
    };
    p.set_name(p_, "p_")?;
    p.set_io(&[g, param, m, v, lr, t], &[p_])?;
    Ok((
        p,
        OptimizerVars {
            avg,
            comps,
            state: vec![m, v],
            p_updated: p_,
        },
    ))
}

/// The schedules of §6.1.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimizerSchedule {
    /// `AR-Opt`: AllReduce + one fused computation kernel (emulating
    /// Apex FusedAdam/FusedLAMB).
    ArOpt,
    /// `RS-Opt-AG` (GShard-Eq): split + reorder + sliced state, with
    /// separate kernels.
    RsOptAg,
    /// `fuse(RS-Opt-AG)`: everything in a single FusedAllReduce.
    FusedRsOptAg,
}

impl OptimizerSchedule {
    /// Paper-style label, e.g. `fuse(RS-Adam-AG)`.
    pub fn label(self, opt: Optimizer) -> String {
        let o = match opt {
            Optimizer::Adam => "Adam",
            Optimizer::Lamb => "LAMB",
        };
        match self {
            OptimizerSchedule::ArOpt => format!("AR-{o}"),
            OptimizerSchedule::RsOptAg => format!("RS-{o}-AG"),
            OptimizerSchedule::FusedRsOptAg => format!("fuse(RS-{o}-AG)"),
        }
    }
}

/// Applies a schedule to a freshly built optimizer program. Returns the
/// transformed program and the transformation log (Table 3's schedule
/// lines).
///
/// # Errors
///
/// Propagates transformation errors (none occur for these fixed
/// programs).
pub fn apply_optimizer_schedule(
    opt: Optimizer,
    hyper: Hyper,
    schedule: OptimizerSchedule,
) -> Result<(Program, Vec<String>), CoreError> {
    let (mut p, vars) = optimizer_program(opt, hyper)?;
    let mut log = Vec::new();
    match schedule {
        OptimizerSchedule::ArOpt => {
            fuse_compute(&mut p, &vars.comps)?;
            log.push("comps = fuse(.., ComputationFuse)".to_string());
        }
        OptimizerSchedule::RsOptAg | OptimizerSchedule::FusedRsOptAg => {
            fuse_compute(&mut p, &vars.comps)?;
            log.push("comps = fuse(.., ComputationFuse)".to_string());
            let (rs, ag) = split_all_reduce(&mut p, vars.avg)?;
            log.push("(rsG, agG) = split(avg, ARSplitRSAG)".to_string());
            let result = reorder_all_gather(&mut p, ag, &vars.comps)?;
            log.push("(scComp, agP, agM, agV) = reorder(agG, comps, AGReorder)".to_string());
            // Slice the optimizer state; drop its gathers (Figure 6b
            // line 6). The parameter gather (program output) stays.
            let mut param_gathers = Vec::new();
            for (member, gather) in &result.gathers {
                if vars.state.iter().any(
                    |&s| matches!(p.op(*member), Ok(coconet_core::OpKind::Update(t, _)) if *t == s),
                ) {
                    let target = match p.op(*member) {
                        Ok(coconet_core::OpKind::Update(t, _)) => *t,
                        _ => unreachable!("filtered above"),
                    };
                    as_slice(&mut p, target)?;
                    dead(&mut p, *gather)?;
                    log.push(format!(
                        "asSlice({}); dead({});",
                        p.node(target)?.name(),
                        gather
                    ));
                } else {
                    param_gathers.push(*gather);
                }
            }
            if schedule == OptimizerSchedule::FusedRsOptAg {
                fuse_all_reduce(&mut p, rs, &vars.comps, &param_gathers)?;
                log.push("fuseAR = fuse(rsG, scComp, agP, AllReduceFuse)".to_string());
            }
        }
    }
    p.validate()?;
    Ok((p, log))
}

/// Reference CPU Adam/LAMB step over the *averaged* gradient; mutates
/// `param`, `m`, `v` in place. Used by tests to validate the DSL
/// programs end to end.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)] // parallel-array update over shared index
pub fn reference_step(
    opt: Optimizer,
    hyper: Hyper,
    param: &mut Tensor,
    m: &mut Tensor,
    v: &mut Tensor,
    grad_sum: &Tensor,
    lr: f32,
    t: f32,
) {
    let n = param.numel();
    let b1 = hyper.beta1 as f32;
    let b2 = hyper.beta2 as f32;
    let corr1 = 1.0 - b1.powf(t);
    let corr2 = 1.0 - b2.powf(t);
    let mut update = vec![0.0f32; n];
    for i in 0..n {
        let g = grad_sum.get(i);
        let mi = m.get(i) * b1 + (1.0 - b1) * g;
        let vi = v.get(i) * b2 + (1.0 - b2) * g * g;
        m.set(i, mi);
        v.set(i, vi);
        let m1 = mi / corr1;
        let v1 = vi / corr2;
        update[i] = m1 / (v1.sqrt() + hyper.eps as f32);
        if opt == Optimizer::Lamb {
            update[i] += hyper.lambda as f32 * param.get(i);
        }
    }
    let scale = match opt {
        Optimizer::Adam => lr,
        Optimizer::Lamb => {
            let r1: f64 = param.sum_squares().sqrt();
            let r2: f64 = update
                .iter()
                .map(|&u| f64::from(u) * f64::from(u))
                .sum::<f64>()
                .sqrt();
            lr * (r1 / r2) as f32
        }
    };
    for i in 0..n {
        param.set(i, param.get(i) - scale * update[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_core::{Binding, OpKind};
    use coconet_runtime::{run_program, Inputs, RunOptions};
    use coconet_tensor::CounterRng;

    fn run_schedule_and_compare(opt: Optimizer, schedule: Option<OptimizerSchedule>) {
        let hyper = Hyper::default();
        let n = 64usize;
        let k = 4usize;
        let binding = Binding::new(k).bind("N", n as u64);
        let rng = CounterRng::new(21);
        let grads: Vec<Tensor> = (0..k)
            .map(|r| Tensor::randn([n], DType::F16, rng, (r * n) as u64))
            .collect();
        let p0 = Tensor::randn([n], DType::F32, rng, 10_000);
        let m0 = Tensor::zeros([n], DType::F32);
        let v0 = Tensor::full([n], DType::F32, 0.01);
        let inputs = Inputs::new()
            .per_rank("g", grads.clone())
            .global("p", p0.clone())
            .global("m", m0.clone())
            .global("v", v0.clone())
            .global("lr", Tensor::scalar(DType::F32, 0.01))
            .global("t", Tensor::scalar(DType::F32, 3.0));

        let program = match schedule {
            None => optimizer_program(opt, hyper).unwrap().0,
            Some(s) => apply_optimizer_schedule(opt, hyper, s).unwrap().0,
        };
        let result = run_program(&program, &binding, &inputs, RunOptions::default()).unwrap();
        // After reorder the program output is the re-gathered parameter
        // (the paper's `agP`).
        let got = result
            .global("p_")
            .or_else(|_| result.global("agp_"))
            .unwrap();

        // Reference: sum gradients (in f32), run the step.
        let mut grad_sum = Tensor::zeros([n], DType::F32);
        for g in &grads {
            grad_sum = grad_sum.add(&g.cast(DType::F32)).unwrap();
        }
        let (mut p_ref, mut m_ref, mut v_ref) = (p0, m0, v0);
        reference_step(
            opt, hyper, &mut p_ref, &mut m_ref, &mut v_ref, &grad_sum, 0.01, 3.0,
        );
        let diff = got.max_abs_diff(&p_ref);
        assert!(diff < 5e-3, "{opt:?} {schedule:?}: diff {diff}");
    }

    #[test]
    fn adam_baseline_matches_reference() {
        run_schedule_and_compare(Optimizer::Adam, None);
    }

    #[test]
    fn adam_all_schedules_match_reference() {
        for s in [
            OptimizerSchedule::ArOpt,
            OptimizerSchedule::RsOptAg,
            OptimizerSchedule::FusedRsOptAg,
        ] {
            run_schedule_and_compare(Optimizer::Adam, Some(s));
        }
    }

    #[test]
    fn lamb_baseline_matches_reference() {
        run_schedule_and_compare(Optimizer::Lamb, None);
    }

    #[test]
    fn lamb_all_schedules_match_reference() {
        for s in [
            OptimizerSchedule::ArOpt,
            OptimizerSchedule::RsOptAg,
            OptimizerSchedule::FusedRsOptAg,
        ] {
            run_schedule_and_compare(Optimizer::Lamb, Some(s));
        }
    }

    #[test]
    fn sliced_schedule_reduces_state_memory() {
        // After fuse(RS-Adam-AG) the optimizer state is sliced: each
        // rank stores 1/k of m and v (the memory saving of §6.1.2).
        let (p, _) = apply_optimizer_schedule(
            Optimizer::Adam,
            Hyper::default(),
            OptimizerSchedule::FusedRsOptAg,
        )
        .unwrap();
        let binding = Binding::new(256).bind("N", 1 << 20);
        let mut sliced_inputs = 0;
        for v in p.live_vars() {
            if matches!(p.op(v).unwrap(), OpKind::Input) && p.ty(v).unwrap().layout.is_sliced() {
                assert_eq!(
                    p.ty(v).unwrap().local_numel(&binding).unwrap(),
                    (1 << 20) / 256
                );
                sliced_inputs += 1;
            }
        }
        assert_eq!(sliced_inputs, 2, "m and v are sliced");
    }

    #[test]
    fn schedule_labels() {
        assert_eq!(
            OptimizerSchedule::FusedRsOptAg.label(Optimizer::Adam),
            "fuse(RS-Adam-AG)"
        );
        assert_eq!(
            OptimizerSchedule::RsOptAg.label(Optimizer::Lamb),
            "RS-LAMB-AG"
        );
        assert_eq!(Optimizer::Lamb.name(), "LAMB");
    }

    #[test]
    fn program_dsl_loc_is_paper_scale() {
        // Table 3a: programs are 12-18 DSL lines. Ours spell out the
        // intermediate expressions, so allow a wider band.
        let (p, _) = optimizer_program(Optimizer::Adam, Hyper::default()).unwrap();
        let loc = p.dsl_loc();
        assert!((10..40).contains(&loc), "loc = {loc}");
    }
}
