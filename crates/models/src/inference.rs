//! End-to-end inference models: model-parallel (§6.2.2) and
//! pipeline-parallel (Table 5).
//!
//! A transformer layer's time is (attention GEMMs + MLP GEMMs) plus the
//! two communication epilogues this repo models in detail. The
//! schedule only changes the epilogues, so end-to-end speedups are the
//! standalone speedups diluted by the GEMM share — which is why the
//! paper's §6.2.2 reports 1.48–1.51× end-to-end from 1.42–1.70×
//! standalone, and Table 5 reports 1.33× for GPT-3 from 11.75×
//! standalone (the pipeline epilogue is a small slice of a 175B
//! model's compute).

use coconet_core::{lower, Binding, CollAlgo, CommConfig, Protocol, WireFormat};
use coconet_sim::Simulator;
use coconet_topology::MachineSpec;

use crate::model_parallel::{apply_block_schedule, Block, BlockSchedule};
use crate::pipeline::{apply_pipeline_schedule, PipelineSchedule};
use crate::ModelConfig;

/// GEMM efficiency as a function of the activation row count
/// (`batch * seq`): fewer rows leave tensor-core tiles idle.
fn gemm_efficiency(rows: usize) -> f64 {
    let r = rows as f64;
    0.55 * r / (r + 2000.0)
}

/// Time of the transformer-layer GEMMs (everything except the modeled
/// epilogues) for one layer on `mp` model-parallel ranks.
fn layer_gemm_time(cfg: &ModelConfig, batch: usize, mp: usize, machine: &MachineSpec) -> f64 {
    // 24 B S H^2 FLOPs per layer (QKV, attention out, two MLP mats),
    // sharded `mp` ways.
    let flops = 24.0 * batch as f64 * cfg.seq as f64 * (cfg.hidden as f64).powi(2);
    flops / (mp as f64 * machine.gpu.fp16_flops * gemm_efficiency(batch * cfg.seq))
}

/// The epilogue (modeled) time of one layer under a model-parallel
/// block schedule: self-attention + MLP epilogues.
pub fn model_parallel_epilogue_time(
    cfg: &ModelConfig,
    batch: usize,
    mp: usize,
    schedule: BlockSchedule,
) -> f64 {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), mp, 1);
    let config = CommConfig {
        algo: CollAlgo::Ring,
        protocol: Protocol::Simple,
        channels: 16,
        format: WireFormat::Dense,
        ..CommConfig::default()
    };
    let mut total = 0.0;
    for block in [Block::SelfAttention, Block::Mlp] {
        let binding = Binding::new(mp)
            .bind("B", batch as u64)
            .bind("S", cfg.seq as u64)
            .bind("H", cfg.hidden as u64)
            .bind("H4", 4 * cfg.hidden as u64);
        let (p, _, _) = apply_block_schedule(block, schedule).expect("fixed schedule");
        let plan = lower(&p, &binding, config).expect("lowers");
        total += sim.time_plan(&plan).total;
    }
    total
}

/// End-to-end model-parallel inference speedup of the overlapped
/// schedule over Megatron-LM (§6.2.2): per layer, both blocks' GEMMs
/// plus the two epilogues.
pub fn model_parallel_inference_speedup(cfg: &ModelConfig, batch: usize, mp: usize) -> f64 {
    let machine = MachineSpec::dgx2_cluster(1);
    // The modeled epilogues replace the MatMul+AR tail of each block;
    // subtract the epilogue MatMul which layer_gemm_time also counts.
    let gemm = layer_gemm_time(cfg, batch, mp, &machine);
    let base = model_parallel_epilogue_time(cfg, batch, mp, BlockSchedule::Megatron);
    let best = model_parallel_epilogue_time(cfg, batch, mp, BlockSchedule::Overlap);
    // The epilogue includes the block's final GEMM; don't double count:
    // remove 2 of the layer's 4 GEMM groups from the additive term.
    let other_gemms = gemm * 0.5;
    (other_gemms + base) / (other_gemms + best)
}

/// The pipeline-parallel epilogue time of one layer boundary under a
/// schedule (Figure 12's standalone measurement).
pub fn pipeline_epilogue_time(
    cfg: &ModelConfig,
    batch: usize,
    group_size: usize,
    num_groups: usize,
    schedule: PipelineSchedule,
) -> f64 {
    let sim = Simulator::new(
        MachineSpec::dgx2_cluster(num_groups.max(2)),
        group_size,
        num_groups,
    );
    let config = CommConfig {
        algo: CollAlgo::Ring,
        protocol: Protocol::Simple,
        channels: 16,
        format: WireFormat::Dense,
        ..CommConfig::default()
    };
    let binding = Binding::new(group_size)
        .with_groups(num_groups)
        .bind("B", batch as u64)
        .bind("S", cfg.seq as u64)
        .bind("H", cfg.hidden as u64);
    let (p, _, _) = apply_pipeline_schedule(schedule).expect("fixed schedule");
    let plan = lower(&p, &binding, config).expect("lowers");
    sim.time_plan(&plan).total
}

/// End-to-end pipeline inference speedup (Table 5): layers-per-node
/// transformer layers of GEMM + model-parallel epilogue, then one
/// pipeline boundary per node.
pub fn pipeline_inference_speedup(cfg: &ModelConfig, batch: usize, layers_per_node: usize) -> f64 {
    let machine = MachineSpec::dgx2_cluster(16);
    let mp = 16;
    let gemm = layer_gemm_time(cfg, batch, mp, &machine) * layers_per_node as f64;
    let mp_epilogue = model_parallel_epilogue_time(cfg, batch, mp, BlockSchedule::Megatron)
        * layers_per_node as f64;
    let base = pipeline_epilogue_time(cfg, batch, 16, 16, PipelineSchedule::Megatron);
    let best = pipeline_epilogue_time(cfg, batch, 16, 16, PipelineSchedule::Overlap);
    let compute = gemm * 0.5 + mp_epilogue;
    (compute + base) / (compute + best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_model_parallel_ordering_matches_figure11() {
        let cfg = ModelConfig::gpt2_8_3b();
        let t = |s| model_parallel_epilogue_time(&cfg, 8, 16, s);
        let megatron = t(BlockSchedule::Megatron);
        let mm_ar_c = t(BlockSchedule::MmArC);
        let gshard = t(BlockSchedule::MmRsCAg);
        let overlap = t(BlockSchedule::Overlap);
        assert!(mm_ar_c < megatron, "fusing pointwise helps");
        assert!(gshard < mm_ar_c, "distributing computations helps more");
        assert!(overlap < gshard, "overlap wins (the autotuner's pick)");
        let speedup = megatron / overlap;
        assert!(
            (1.2..2.2).contains(&speedup),
            "Figure 11 band: 1.42-1.70x, got {speedup}"
        );
    }

    #[test]
    fn end_to_end_model_parallel_speedup_is_diluted() {
        // §6.2.2: 1.48x (GPT-2 8.3B) / 1.51x (BERT 3.9B) end to end.
        let cfg = ModelConfig::gpt2_8_3b();
        let e2e = model_parallel_inference_speedup(&cfg, 8, 16);
        let standalone = model_parallel_epilogue_time(&cfg, 8, 16, BlockSchedule::Megatron)
            / model_parallel_epilogue_time(&cfg, 8, 16, BlockSchedule::Overlap);
        assert!(e2e > 1.1, "e2e {e2e}");
        assert!(e2e < standalone, "dilution: {e2e} < {standalone}");
    }

    #[test]
    fn standalone_pipeline_ordering_matches_figure12() {
        let cfg = ModelConfig::gpt3_175b();
        let t = |s| pipeline_epilogue_time(&cfg, 2, 16, 16, s);
        let megatron = t(PipelineSchedule::Megatron);
        let ar_c = t(PipelineSchedule::ArCP2pAg);
        let gshard = t(PipelineSchedule::RsCP2pAg);
        let overlap = t(PipelineSchedule::Overlap);
        assert!(ar_c < megatron);
        assert!(gshard < ar_c);
        assert!(overlap < gshard);
        // Figure 12: 4.2x / 7.1x / 11.8-12.2x bands (we accept the
        // same ordering at comparable magnitudes).
        let s1 = megatron / ar_c;
        let s2 = megatron / gshard;
        let s3 = megatron / overlap;
        assert!((2.5..8.0).contains(&s1), "AR-C-P2P-AG {s1}");
        assert!((4.0..11.0).contains(&s2), "GShard {s2}");
        assert!((7.0..18.0).contains(&s3), "overlap {s3}");
    }

    #[test]
    fn table5_end_to_end_band() {
        // GPT-2 8.3B, 5 layers/node, micro batch 16: paper 1.77x.
        let gpt2 = pipeline_inference_speedup(&ModelConfig::gpt2_8_3b(), 16, 5);
        assert!((1.15..2.6).contains(&gpt2), "GPT-2 {gpt2}");
        // GPT-3 175B, 6 layers/node, micro batch 2: paper 1.33x.
        let gpt3 = pipeline_inference_speedup(&ModelConfig::gpt3_175b(), 2, 6);
        assert!((1.1..1.9).contains(&gpt3), "GPT-3 {gpt3}");
        // GPT-2's boundary is a bigger fraction: larger speedup.
        assert!(gpt2 > gpt3);
    }
}
