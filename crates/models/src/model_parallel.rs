//! Model-parallel self-attention and MLP blocks (§6.2, Figure 3).
//!
//! Megatron-LM splits each transformer layer across the GPUs of one
//! node: the last operations of both the self-attention block and the
//! MLP block are a row-parallel MatMul producing partial sums, an
//! AllReduce, bias + dropout + residual. The paper's schedules differ
//! in how much of that is fused and overlapped.

use coconet_core::xform::{
    fuse_all_reduce, fuse_compute, overlap, reorder_all_gather, split_all_reduce,
};
use coconet_core::{CoreError, DType, Layout, Program, ReduceOp, VarId};

/// Which block of the transformer layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Block {
    /// Self-attention epilogue: `[B,S,H] x [H,H]`.
    SelfAttention,
    /// MLP epilogue: `[B,S,4H] x [4H,H]`.
    Mlp,
}

impl Block {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Block::SelfAttention => "self_attention",
            Block::Mlp => "mlp",
        }
    }
}

/// Handles into a model-parallel block program.
#[derive(Clone, Debug)]
pub struct BlockVars {
    /// The row-parallel MatMul.
    pub layer: VarId,
    /// The AllReduce of partial sums.
    pub sum: VarId,
    /// The pointwise epilogue (bias add, dropout, residual add).
    pub comps: Vec<VarId>,
    /// The program output.
    pub out: VarId,
}

/// Builds the Figure 3 program for one block. The contraction
/// dimension is `H` for self-attention and `4H` (symbol `H4`) for the
/// MLP; both produce `[B, S, H]`.
///
/// # Errors
///
/// Propagates builder errors (none occur for the fixed shapes).
pub fn block_program(block: Block) -> Result<(Program, BlockVars), CoreError> {
    let mut p = Program::new(block.name());
    let contract = match block {
        Block::SelfAttention => "H",
        Block::Mlp => "H4",
    };
    let w = p.input("w", DType::F16, [contract, "H"], Layout::sliced(0));
    let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
    let input = p.input("in", DType::F16, ["B", "S", contract], Layout::sliced(2));
    let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
    let layer = p.matmul(input, w)?;
    p.set_name(layer, "layer")?;
    let sum = p.all_reduce(ReduceOp::Sum, layer)?;
    p.set_name(sum, "sum")?;
    let biased = p.add(sum, b)?;
    let d = p.dropout(biased, 0.1)?;
    p.set_name(d, "dropout")?;
    let out = p.add(d, r)?;
    p.set_name(out, "out")?;
    p.set_io(&[w, input, b, r], &[out])?;
    Ok((
        p,
        BlockVars {
            layer,
            sum,
            comps: vec![biased, d, out],
            out,
        },
    ))
}

/// The §6.2.1 schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockSchedule {
    /// Megatron-LM baseline: library MatMul, NCCL AllReduce, separate
    /// pointwise kernels.
    Megatron,
    /// `MM-AR-C`: pointwise computations fused into one kernel.
    MmArC,
    /// GShard-Eq / `MM-RS-C-AG`: split + reorder, sliced computations.
    MmRsCAg,
    /// `ol(MM, fuse(RS-C-AG))`: FusedAllReduce overlapped with the
    /// MatMul — the autotuner's winner.
    Overlap,
}

impl BlockSchedule {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            BlockSchedule::Megatron => "Megatron-LM",
            BlockSchedule::MmArC => "MM-AR-C",
            BlockSchedule::MmRsCAg => "GShard-Eq (MM-RS-C-AG)",
            BlockSchedule::Overlap => "ol(MM,fuse(RS-C-AG))",
        }
    }

    /// All schedules in presentation order (Figure 11).
    pub const ALL: [BlockSchedule; 4] = [
        BlockSchedule::Megatron,
        BlockSchedule::MmArC,
        BlockSchedule::MmRsCAg,
        BlockSchedule::Overlap,
    ];
}

/// Builds a block program and applies a schedule. Returns the program,
/// the transformation log, and the name of the final output variable.
///
/// # Errors
///
/// Propagates transformation errors (none occur for these programs).
pub fn apply_block_schedule(
    block: Block,
    schedule: BlockSchedule,
) -> Result<(Program, Vec<String>, String), CoreError> {
    let (mut p, vars) = block_program(block)?;
    let mut log = Vec::new();
    let mut out_name = "out".to_string();
    match schedule {
        BlockSchedule::Megatron => {}
        BlockSchedule::MmArC => {
            fuse_compute(&mut p, &vars.comps)?;
            log.push("c = fuse(comps, ComputationFuse)".to_string());
        }
        BlockSchedule::MmRsCAg | BlockSchedule::Overlap => {
            let (rs, ag) = split_all_reduce(&mut p, vars.sum)?;
            log.push("(rsSum, agSum) = split(sum, ARSplitRSAG)".to_string());
            let result = reorder_all_gather(&mut p, ag, &vars.comps)?;
            log.push("(scOut, agOut) = reorder(agSum, comps)".to_string());
            let new_ag = result.gathers[0].1;
            out_name = p.node(new_ag)?.name().to_string();
            if schedule == BlockSchedule::Overlap {
                fuse_all_reduce(&mut p, rs, &result.sliced, &[new_ag])?;
                log.push("fuseAR = fuse(rsSum, scOut, agOut, AllReduceFuse)".to_string());
                overlap(&mut p, &[vars.layer, rs])?;
                log.push("overlapOut = overlap(layer, fuseAR)".to_string());
            } else {
                fuse_compute(&mut p, &result.sliced)?;
                log.push("c = fuse(scOut, ComputationFuse)".to_string());
            }
        }
    }
    p.validate()?;
    Ok((p, log, out_name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_core::{Binding, CommConfig, Step};
    use coconet_runtime::{run_program, Inputs, RunOptions};
    use coconet_tensor::{CounterRng, Tensor};

    fn small_binding() -> Binding {
        Binding::new(4)
            .bind("B", 2)
            .bind("S", 4)
            .bind("H", 8)
            .bind("H4", 32)
    }

    fn inputs_for(block: Block, binding: &Binding) -> Inputs {
        let rng = CounterRng::new(31);
        let h = binding.get("H").unwrap() as usize;
        let contract = match block {
            Block::SelfAttention => h,
            Block::Mlp => binding.get("H4").unwrap() as usize,
        };
        let b = binding.get("B").unwrap() as usize;
        let s = binding.get("S").unwrap() as usize;
        Inputs::new()
            .global("w", Tensor::randn([contract, h], DType::F16, rng, 0))
            .global("b", Tensor::randn([h], DType::F16, rng, 50_000))
            .global(
                "in",
                Tensor::randn([b, s, contract], DType::F16, rng, 100_000),
            )
            .global("r", Tensor::randn([b, s, h], DType::F16, rng, 200_000))
    }

    #[test]
    fn all_schedules_preserve_semantics_for_both_blocks() {
        for block in [Block::SelfAttention, Block::Mlp] {
            let binding = small_binding();
            let inputs = inputs_for(block, &binding);
            let opts = RunOptions::default().with_seed(5);
            let (base, _, base_out) = apply_block_schedule(block, BlockSchedule::Megatron).unwrap();
            let reference = run_program(&base, &binding, &inputs, opts)
                .unwrap()
                .global(&base_out)
                .unwrap();
            for schedule in BlockSchedule::ALL {
                let (p, _, out_name) = apply_block_schedule(block, schedule).unwrap();
                let got = run_program(&p, &binding, &inputs, opts)
                    .unwrap()
                    .global(&out_name)
                    .unwrap();
                let diff = got.max_abs_diff(&reference);
                assert!(
                    diff < 2e-2,
                    "{:?} {} differs by {diff}",
                    block,
                    schedule.label()
                );
            }
        }
    }

    #[test]
    fn schedules_lower_to_expected_step_shapes() {
        let binding = Binding::new(16)
            .bind("B", 8)
            .bind("S", 1024)
            .bind("H", 3072)
            .bind("H4", 4 * 3072);
        // Megatron: 5 separate launches.
        let (p, _, _) =
            apply_block_schedule(Block::SelfAttention, BlockSchedule::Megatron).unwrap();
        let plan = coconet_core::lower(&p, &binding, CommConfig::default()).unwrap();
        assert_eq!(plan.total_launches(), 5);
        // MM-AR-C: MatMul + AR + one fused kernel = 3.
        let (p, _, _) = apply_block_schedule(Block::SelfAttention, BlockSchedule::MmArC).unwrap();
        let plan = coconet_core::lower(&p, &binding, CommConfig::default()).unwrap();
        assert_eq!(plan.total_launches(), 3);
        // Overlap: a single pipeline of 2 stages.
        let (p, _, _) = apply_block_schedule(Block::SelfAttention, BlockSchedule::Overlap).unwrap();
        let plan = coconet_core::lower(&p, &binding, CommConfig::default()).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(matches!(plan.steps[0], Step::Overlapped(_)));
    }

    #[test]
    fn mlp_contracts_over_4h() {
        let (p, vars) = block_program(Block::Mlp).unwrap();
        let binding = small_binding();
        let ty = p.ty(vars.layer).unwrap();
        assert_eq!(ty.shape.eval(&binding).unwrap().dims(), &[2, 4, 8]);
        let plan = coconet_core::lower(&p, &binding, CommConfig::default()).unwrap();
        if let Step::MatMul(mm) = &plan.steps[0] {
            assert_eq!(mm.k, 32 / 4, "4H contracted, sliced over 4 ranks");
        } else {
            panic!("first step is the MatMul");
        }
    }
}
