//! End-to-end BERT training iteration model (Table 4's speedups).
//!
//! One data-parallel iteration processes `global_batch` samples:
//! `global_batch / (ranks * micro_batch)` gradient-accumulation steps
//! of forward+backward, then one optimizer step. The strategies differ
//! in (i) the micro batch memory admits — larger micro batches run
//! GEMMs at higher efficiency and amortize per-step overheads — and
//! (ii) the optimizer step itself: copies + AllReduce + replicated
//! compute for the baselines versus CoCoNet's fused scattered
//! `fuse(RS-Opt-AG)` kernel.

use coconet_core::{
    CollAlgo, CollKind, CommConfig, CommSched, DType, FusedCollectiveStep, KernelStep, Protocol,
    ReduceOp, ScatterInfo, WireFormat,
};
use coconet_sim::{GroupGeom, Simulator};

use crate::{MemoryModel, ModelConfig, Optimizer, Strategy};

/// Per-GPU fixed overhead per accumulation step (data loader, Python
/// dispatch, launch queues).
const STEP_OVERHEAD: f64 = 1.2e-3;

/// Baseline FusedAdam/FusedLAMB preprocessing (§6.1.1 observes it).
const APEX_PREPROCESS: f64 = 25e-6;

/// An estimated training iteration.
#[derive(Clone, Debug)]
pub struct TrainingEstimate {
    /// Micro batch used (memory-limited).
    pub micro_batch: usize,
    /// Gradient accumulation steps per iteration.
    pub accum_steps: usize,
    /// Forward+backward time per iteration (all steps), seconds.
    pub fwd_bwd: f64,
    /// Optimizer + communication time per iteration, seconds.
    pub optimizer: f64,
}

impl TrainingEstimate {
    /// Total iteration time.
    pub fn total(&self) -> f64 {
        self.fwd_bwd + self.optimizer
    }
}

/// GEMM efficiency as a function of micro batch: small batches
/// underutilize tensor cores (the reason larger micro batches train
/// faster at equal total work, §6.1.2).
fn gemm_efficiency(rows: usize) -> f64 {
    let r = rows as f64;
    0.55 * r / (r + 2000.0)
}

/// Estimates one training iteration for a strategy, or `None` on OOM.
pub fn estimate_iteration(
    sim: &Simulator,
    memory: &MemoryModel,
    cfg: &ModelConfig,
    opt: Optimizer,
    strategy: Strategy,
    ranks: usize,
    global_batch: usize,
) -> Option<TrainingEstimate> {
    let micro = memory.max_micro_batch(cfg, opt, strategy, ranks, global_batch)?;
    let accum_steps = (global_batch / (ranks * micro)).max(1);

    // Forward + backward: 6N FLOPs per token at batch-dependent GEMM
    // efficiency, plus activation traffic at memory bandwidth.
    let machine = sim.cost_model().machine();
    let tokens_per_step = (micro * cfg.seq) as f64;
    let flops_per_step = cfg.train_flops_per_token() * tokens_per_step;
    let eff = gemm_efficiency(micro * cfg.seq);
    let act_bytes = memory.activation_bytes_per_sample(cfg, cfg.seq) * micro as f64;
    let step_time = (flops_per_step / (machine.gpu.fp16_flops * eff))
        .max(3.0 * act_bytes / machine.gpu.mem_bw)
        + STEP_OVERHEAD;
    let fwd_bwd = step_time * accum_steps as f64;

    Some(TrainingEstimate {
        micro_batch: micro,
        accum_steps,
        fwd_bwd,
        optimizer: optimizer_step_time(sim, cfg, opt, strategy, ranks),
    })
}

/// Time of the per-iteration optimizer step (gradient exchange + state
/// update) for each implementation.
pub fn optimizer_step_time(
    sim: &Simulator,
    cfg: &ModelConfig,
    opt: Optimizer,
    strategy: Strategy,
    ranks: usize,
) -> f64 {
    let n = cfg.params();
    let geom = GroupGeom {
        size: ranks,
        nodes_spanned: ranks.div_ceil(16),
        ranks_per_node: ranks.min(16),
    };
    let cost = sim.cost_model();
    let config = CommConfig {
        algo: CollAlgo::Ring,
        protocol: Protocol::Simple,
        channels: 16,
        format: WireFormat::Dense,
        ..CommConfig::default()
    };
    let norms = match opt {
        Optimizer::Adam => 0,
        Optimizer::Lamb => 2,
    };
    // State traffic per element: read m,v,master (12B) + g (2B); write
    // m,v,master (12B) + p16 (2B).
    let full_kernel = KernelStep {
        label: "fused optimizer".into(),
        bytes_read: 14 * n,
        bytes_written: 14 * n,
        flops: 12 * n,
        n_ops: 12,
    };
    let sliced_kernel = KernelStep {
        label: "sliced optimizer".into(),
        bytes_read: 14 * n / ranks as u64,
        bytes_written: 14 * n / ranks as u64,
        flops: 12 * n / ranks as u64,
        n_ops: 12,
    };
    let copy = KernelStep {
        label: "grad copy".into(),
        bytes_read: 2 * n,
        bytes_written: 2 * n,
        flops: 0,
        n_ops: 1,
    };
    let norm_time = norms as f64 * (ranks as f64).log2() * 2.0e-6;

    match strategy {
        Strategy::NvBert => {
            // copy-in + AllReduce + copy-out + Apex fused optimizer;
            // the copies launch one kernel per layer tensor.
            let n_tensors = (16 * cfg.layers + 2) as f64;
            2.0 * (cost.kernel_time(&copy) + n_tensors * 5e-6)
                + cost.collective_time(CollKind::AllReduce, n, DType::F16, geom, config)
                + cost.kernel_time(&full_kernel)
                + APEX_PREPROCESS
                + norm_time
        }
        Strategy::PyTorchDdp => {
            // Bucketed AllReduce partially overlapped with backward:
            // the exposed fraction plus per-bucket launch/sync costs
            // and the full replicated optimizer.
            let ar_time = cost.collective_time(CollKind::AllReduce, n, DType::F16, geom, config);
            let n_buckets = (2 * n).div_ceil(25_000_000) as f64;
            0.6 * ar_time
                + n_buckets * 20e-6
                + cost.kernel_time(&full_kernel)
                + APEX_PREPROCESS
                + norm_time
        }
        Strategy::Zero => {
            // copy-in + RS + sliced optimizer + AG (separate kernels).
            cost.kernel_time(&copy)
                + cost.collective_time(CollKind::ReduceScatter, n, DType::F16, geom, config)
                + cost.kernel_time(&sliced_kernel)
                + cost.collective_time(CollKind::AllGather, n, DType::F16, geom, config)
                + norm_time
        }
        Strategy::CoCoNet => {
            // One fused scattered-tensor kernel (§5.4 + §5.2).
            let fused = FusedCollectiveStep {
                label: "fuse(RS-Opt-AG)".into(),
                algo: CollAlgo::Ring,
                elems: n,
                dtype: DType::F16,
                extra_bytes_read: 14 * n / ranks as u64,
                extra_bytes_written: 14 * n / ranks as u64,
                flops: 12 * n / ranks as u64,
                embedded_scalar_allreduces: norms,
                n_fused_ops: 12,
                scattered: Some(ScatterInfo {
                    n_tensors: 2 * cfg.layers as u64 * 16, // ~weights+biases per layer
                    n_buckets: n / 1024,
                }),
            };
            cost.fused_collective_time(&fused, geom, config)
        }
    }
}

// ---------------------------------------------------------------------
// Executable data-parallel training (the wire-compression proof).
// ---------------------------------------------------------------------

/// Configuration of the *executable* data-parallel loop: a linear
/// least-squares model trained by synchronous gradient descent on real
/// rank threads, with the gradient AllReduce running under a
/// [`WireFormat`] — the end-to-end demonstration that top-k
/// sparsification with SparCML-style error feedback converges like the
/// dense wire while moving a fraction of the bytes.
#[derive(Clone, Copy, Debug)]
pub struct DataParallelSpec {
    /// Rank threads (data shards).
    pub ranks: usize,
    /// Model dimension (weights).
    pub dim: usize,
    /// Training samples per rank.
    pub samples_per_rank: usize,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Inverse-time learning-rate decay: iteration `t` steps at
    /// `lr / (1 + lr_decay · t)`. Decay is what lets the error-feedback
    /// loop close the gap to the dense trajectory exactly (the
    /// steady-state perturbation of a compressed gradient stream is
    /// proportional to the step size).
    pub lr_decay: f32,
    /// Data/initialization seed.
    pub seed: u64,
    /// Wire format of the gradient AllReduce.
    pub format: WireFormat,
    /// Communication schedule of the gradient exchange. `Barriered`
    /// runs the classic blocking loop; `Priority` drives the loop
    /// through the barrier-free
    /// [`StreamExecutor`](coconet_runtime::StreamExecutor), whose
    /// gradient jobs drain on the priority-scheduled fabric while the
    /// next iteration's forward proceeds. Results are bit-identical;
    /// the top-k wire has no streaming ring form and keeps the
    /// blocking loop (its sparse exchange carries the error-feedback
    /// residual).
    pub sched: CommSched,
}

impl Default for DataParallelSpec {
    fn default() -> DataParallelSpec {
        DataParallelSpec {
            ranks: 4,
            dim: 64,
            samples_per_rank: 32,
            iters: 400,
            lr: 0.2,
            lr_decay: 0.03,
            seed: 2026,
            format: WireFormat::Dense,
            sched: CommSched::Barriered,
        }
    }
}

/// The outcome of one [`train_data_parallel`] run.
#[derive(Clone, Debug)]
pub struct DataParallelRun {
    /// Global mean-squared error after each iteration.
    pub losses: Vec<f64>,
    /// Final (replicated) weights.
    pub weights: coconet_tensor::Tensor,
    /// Rank 0's gradient-exchange wire bytes over the whole run (the
    /// loss reduction is metered out), as the [`BytesLedger`] counted
    /// them — the compression subsystem's measured volume.
    ///
    /// [`BytesLedger`]: coconet_runtime::BytesLedger
    pub grad_bytes_per_rank: u64,
}

impl DataParallelRun {
    /// The last iteration's loss.
    pub fn final_loss(&self) -> f64 {
        *self.losses.last().expect("at least one iteration")
    }
}

/// Trains `y = X·w` by synchronous data-parallel gradient descent on
/// `spec.ranks` real rank threads. Each rank holds its own shard of a
/// common synthetic regression problem (`y = X·w* + noise`, all drawn
/// from the deterministic counter RNG), computes its local gradient,
/// and the gradient mean travels through
/// [`all_reduce_wire`](coconet_runtime::all_reduce_wire) under
/// `spec.format` — with a *persistent per-rank
/// [`ErrorFeedback`](coconet_compress::ErrorFeedback) residual*, so
/// the top-k wire re-injects everything it ever dropped. Every rank
/// applies the identical replicated update, so the weights stay
/// replicated throughout.
pub fn train_data_parallel(spec: &DataParallelSpec) -> DataParallelRun {
    use coconet_compress::ErrorFeedback;
    use coconet_runtime::{all_reduce_scalar, all_reduce_wire, run_ranks, Group, StreamExecutor};
    use coconet_tensor::{CounterRng, Tensor};

    let s = *spec;
    let (p, d, m) = (s.ranks, s.dim, s.samples_per_rank);
    let total = (p * m) as f64;
    let mut results = run_ranks(p, move |comm| {
        let group = Group { start: 0, size: p };
        let rank = comm.rank();
        let rng = CounterRng::new(s.seed);
        // The common ground truth, plus this rank's shard: features,
        // labels with a small noise floor (so the converged loss is a
        // stable nonzero target to compare formats against).
        let w_star = Tensor::randn([d], DType::F32, rng, 0);
        let x = Tensor::randn([m, d], DType::F32, rng, (1 + rank as u64) * 1_000_000);
        let noise = Tensor::randn([m], DType::F32, rng, (1 + rank as u64) * 7_000_000);
        let y = Tensor::from_fn([m], DType::F32, |i| {
            (0..d)
                .map(|j| x.get(i * d + j) * w_star.get(j))
                .sum::<f32>()
                + 0.1 * noise.get(i)
        });

        // Barrier-free path: the same synchronous-SGD recurrence, but
        // the gradient AllReduce is a priority-scheduled streaming job
        // instead of a blocking call. The streamed ring is
        // bit-identical to the blocking one, so losses and weights
        // match the barriered loop exactly; the per-class ledger
        // counters (instead of per-iteration resets) meter the
        // gradient traffic, since iteration boundaries overlap.
        if s.sched == CommSched::Priority && !matches!(s.format, WireFormat::TopK { .. }) {
            let mut exec = StreamExecutor::new(
                group,
                vec![Tensor::zeros([d], DType::F32)],
                CommSched::Priority,
                s.format,
            );
            let mut losses = Vec::with_capacity(s.iters);
            let mut apply_iter = 0u64;
            exec.run_iterations(
                &comm,
                s.iters as u64,
                |_, _, _| {},
                |_, _, w| {
                    let residual = Tensor::from_fn([m], DType::F32, |i| {
                        (0..d).map(|j| x.get(i * d + j) * w.get(j)).sum::<f32>() - y.get(i)
                    });
                    let grad = Tensor::from_fn([d], DType::F32, |j| {
                        (2.0 / total as f32)
                            * (0..m)
                                .map(|i| x.get(i * d + j) * residual.get(i))
                                .sum::<f32>()
                    });
                    let sse: f64 = (0..m).map(|i| f64::from(residual.get(i)).powi(2)).sum();
                    losses.push(all_reduce_scalar(&comm, group, sse, ReduceOp::Sum) / total);
                    grad
                },
                |_, w, g| {
                    let step = s.lr / (1.0 + s.lr_decay * apply_iter as f32);
                    apply_iter += 1;
                    for j in 0..d {
                        w.set(j, w.get(j) - step * g.get(j));
                    }
                },
            );
            let weights = exec.params().swap_remove(0);
            let grad_bytes: u64 = comm.ledger().class_bytes_sent.iter().sum();
            return (losses, weights, grad_bytes);
        }

        let mut w = Tensor::zeros([d], DType::F32);
        let mut feedback = ErrorFeedback::new();
        let mut losses = Vec::with_capacity(s.iters);
        let mut grad_bytes = 0u64;
        for t in 0..s.iters {
            // Residuals and local gradient of the global MSE
            // (1/M)·Σ (x·w − y)²: grad = (2/M)·Xᵀr, summed exactly by
            // the AllReduce because each rank scales by 1/M.
            let residual = Tensor::from_fn([m], DType::F32, |i| {
                (0..d).map(|j| x.get(i * d + j) * w.get(j)).sum::<f32>() - y.get(i)
            });
            let grad = Tensor::from_fn([d], DType::F32, |j| {
                (2.0 / total as f32)
                    * (0..m)
                        .map(|i| x.get(i * d + j) * residual.get(i))
                        .sum::<f32>()
            });
            comm.reset_ledger();
            let global_grad = all_reduce_wire(
                &comm,
                group,
                &grad,
                ReduceOp::Sum,
                CollAlgo::Ring,
                0,
                s.format,
                Some(&mut feedback),
            );
            grad_bytes += comm.ledger().bytes_sent;
            let step = s.lr / (1.0 + s.lr_decay * t as f32);
            for j in 0..d {
                w.set(j, w.get(j) - step * global_grad.get(j));
            }
            let sse: f64 = (0..m).map(|i| f64::from(residual.get(i)).powi(2)).sum();
            losses.push(all_reduce_scalar(&comm, group, sse, ReduceOp::Sum) / total);
        }
        (losses, w, grad_bytes)
    });
    let (losses, weights, grad_bytes_per_rank) = results.swap_remove(0);
    DataParallelRun {
        losses,
        weights,
        grad_bytes_per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_topology::MachineSpec;

    fn sim() -> Simulator {
        Simulator::new(MachineSpec::paper_testbed(), 256, 1)
    }

    #[test]
    fn coconet_optimizer_step_is_fastest() {
        let sim = sim();
        let cfg = ModelConfig::bert_336m();
        let coconet = optimizer_step_time(&sim, &cfg, Optimizer::Adam, Strategy::CoCoNet, 256);
        for s in [Strategy::NvBert, Strategy::PyTorchDdp, Strategy::Zero] {
            let t = optimizer_step_time(&sim, &cfg, Optimizer::Adam, s, 256);
            assert!(coconet < t, "CoCoNet {coconet} vs {} {t}", s.name());
        }
    }

    #[test]
    fn table4_adam_speedups_have_paper_shape() {
        let sim = sim();
        let memory = MemoryModel::default();
        // 336M: modest speedup from the optimizer step alone.
        let cfg = ModelConfig::bert_336m();
        let nv = estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            Strategy::NvBert,
            256,
            8192,
        )
        .unwrap();
        let coco = estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            Strategy::CoCoNet,
            256,
            8192,
        )
        .unwrap();
        let speedup = nv.total() / coco.total();
        assert!((1.005..1.6).contains(&speedup), "336M speedup {speedup}");

        // 1.2B: bigger speedup because CoCoNet also trains at micro
        // batch 32 vs 8 (paper: 1.53x over NV BERT).
        let cfg = ModelConfig::bert_1_2b();
        let nv = estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            Strategy::NvBert,
            256,
            8192,
        )
        .unwrap();
        let coco = estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            Strategy::CoCoNet,
            256,
            8192,
        )
        .unwrap();
        assert_eq!(nv.micro_batch, 8);
        assert_eq!(coco.micro_batch, 32);
        let speedup = nv.total() / coco.total();
        assert!((1.2..2.0).contains(&speedup), "1.2B speedup {speedup}");

        // 3.9B: baselines OOM, CoCoNet trains, and still beats ZeRO
        // (paper: 1.22x).
        let cfg = ModelConfig::bert_3_9b();
        assert!(estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            Strategy::NvBert,
            256,
            8192
        )
        .is_none());
        let zero = estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            Strategy::Zero,
            256,
            8192,
        )
        .unwrap();
        let coco = estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            Strategy::CoCoNet,
            256,
            8192,
        )
        .unwrap();
        let speedup = zero.total() / coco.total();
        assert!(speedup > 1.0, "3.9B vs ZeRO {speedup}");
    }

    #[test]
    fn lamb_zero_gap_is_larger_than_adam_gap() {
        // Paper: "For LAMB, the speedup over ZeRO is higher than Adam
        // because ZeRO does not support distributing LAMB optimizer
        // state" (so it trains at a smaller micro batch).
        let sim = sim();
        let memory = MemoryModel::default();
        let cfg = ModelConfig::bert_1_2b();
        let adam_gap = {
            let z = estimate_iteration(
                &sim,
                &memory,
                &cfg,
                Optimizer::Adam,
                Strategy::Zero,
                256,
                8192,
            )
            .unwrap();
            let c = estimate_iteration(
                &sim,
                &memory,
                &cfg,
                Optimizer::Adam,
                Strategy::CoCoNet,
                256,
                8192,
            )
            .unwrap();
            z.total() / c.total()
        };
        let lamb_gap = {
            let z = estimate_iteration(
                &sim,
                &memory,
                &cfg,
                Optimizer::Lamb,
                Strategy::Zero,
                256,
                65536,
            )
            .unwrap();
            let c = estimate_iteration(
                &sim,
                &memory,
                &cfg,
                Optimizer::Lamb,
                Strategy::CoCoNet,
                256,
                65536,
            )
            .unwrap();
            z.total() / c.total()
        };
        assert!(lamb_gap > adam_gap, "lamb {lamb_gap} vs adam {adam_gap}");
    }

    /// The acceptance criterion's convergence half: with persistent
    /// error feedback, the top-k compressed loop lands within 1 % of
    /// the dense loop's final loss, and FP16 lands essentially on it.
    #[test]
    fn compressed_training_matches_dense_loss_within_one_percent() {
        let dense = train_data_parallel(&DataParallelSpec::default());
        // The loop actually optimizes: two orders of magnitude down.
        assert!(
            dense.final_loss() < dense.losses[0] / 100.0,
            "dense did not converge: {} -> {}",
            dense.losses[0],
            dense.final_loss()
        );
        for format in [WireFormat::Fp16, WireFormat::TopK { k_permille: 90 }] {
            let run = train_data_parallel(&DataParallelSpec {
                format,
                ..DataParallelSpec::default()
            });
            let rel = (run.final_loss() - dense.final_loss()).abs() / dense.final_loss();
            assert!(
                rel <= 0.01,
                "{format}: final loss {} vs dense {} ({:.3} % off)",
                run.final_loss(),
                dense.final_loss(),
                rel * 100.0
            );
        }
    }

    /// The ledger-verified volume half: over the whole training run
    /// the FP16 gradient stream moves exactly half the dense bytes and
    /// the top-k stream moves the analytic sparse volume — a small
    /// fraction of dense.
    #[test]
    fn compressed_training_moves_the_analytic_bytes() {
        let spec = DataParallelSpec::default();
        let dense = train_data_parallel(&spec);
        let fp16 = train_data_parallel(&DataParallelSpec {
            format: WireFormat::Fp16,
            ..spec
        });
        let topk = train_data_parallel(&DataParallelSpec {
            format: WireFormat::TopK { k_permille: 90 },
            ..spec
        });
        // Per-iteration analytic volumes × iterations, exactly.
        let iters = spec.iters as u64;
        let ring = coconet_runtime::ring_all_reduce_wire_bytes(spec.dim, spec.ranks, DType::F32);
        assert_eq!(dense.grad_bytes_per_rank, iters * ring);
        assert_eq!(fp16.grad_bytes_per_rank * 2, dense.grad_bytes_per_rank);
        assert_eq!(
            topk.grad_bytes_per_rank,
            iters * coconet_runtime::top_k_all_reduce_wire_bytes(spec.dim, spec.ranks, 90)
        );
        assert!(topk.grad_bytes_per_rank < dense.grad_bytes_per_rank / 4);
    }

    /// The barrier-free streaming path is a pure scheduling change:
    /// losses and weights are bit-identical to the barriered loop, and
    /// the gradient stream still moves exactly the analytic ring
    /// volume — now metered by the per-class ledger counters, since
    /// iteration boundaries overlap and per-iteration resets are gone.
    #[test]
    fn streamed_training_is_bit_identical_to_barriered() {
        let spec = DataParallelSpec {
            iters: 60,
            ..DataParallelSpec::default()
        };
        let barriered = train_data_parallel(&spec);
        let streamed = train_data_parallel(&DataParallelSpec {
            sched: CommSched::Priority,
            ..spec
        });
        assert_eq!(barriered.losses, streamed.losses);
        assert_eq!(
            barriered.weights.to_f32_vec(),
            streamed.weights.to_f32_vec()
        );
        let ring = coconet_runtime::ring_all_reduce_wire_bytes(spec.dim, spec.ranks, DType::F32);
        assert_eq!(streamed.grad_bytes_per_rank, spec.iters as u64 * ring);
    }

    #[test]
    fn gemm_efficiency_grows_with_rows() {
        assert!(gemm_efficiency(32 * 512) > gemm_efficiency(8 * 512));
        assert!(gemm_efficiency(8 * 512) > gemm_efficiency(512));
        assert!(gemm_efficiency(1 << 20) < 0.56);
    }
}
