//! Pipeline-parallel transformer layers (§4, Figure 8; §6.3).
//!
//! Megatron-LM assigns consecutive transformer layers to groups of
//! ranks; within a group, model parallelism produces a replicated
//! activation via AllReduce, the pointwise epilogue runs, and the
//! result is P2P-sent to the corresponding rank of the next group.
//! Because the AllReduce output is replicated, the baseline sends the
//! *same* data `group_size` times over the inter-node fabric — the
//! redundancy CoCoNet's sliced P2P eliminates (Figure 7).

use coconet_core::xform::{fuse_send, overlap, reorder_all_gather, split_all_reduce};
use coconet_core::{CoreError, DType, Layout, PeerSelector, Program, ReduceOp, VarId};

/// Handles into a pipeline-parallel transformer program.
#[derive(Clone, Debug)]
pub struct PipelineVars {
    /// The intra-group AllReduce.
    pub sum: VarId,
    /// The pointwise epilogue.
    pub comps: Vec<VarId>,
    /// The P2P send to the next group.
    pub send: VarId,
}

/// Builds the Figure 8a program: `sum = AllReduce(in); send =
/// Dropout(sum + b) + r; output = Send(send, GroupRank(GROUP+1, RANK))`.
///
/// # Errors
///
/// Propagates builder errors (none occur for the fixed shape).
pub fn pipeline_program() -> Result<(Program, PipelineVars), CoreError> {
    let mut p = Program::new("transformer");
    let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::Local);
    let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
    let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
    let sum = p.all_reduce(ReduceOp::Sum, input)?;
    p.set_name(sum, "sum")?;
    let biased = p.add(sum, b)?;
    let d = p.dropout(biased, 0.1)?;
    let send_val = p.add(d, r)?;
    p.set_name(send_val, "send")?;
    let output = p.send(send_val, PeerSelector::NextGroupSameRank)?;
    p.set_name(output, "output")?;
    p.set_io(&[input, b, r], &[output])?;
    Ok((
        p,
        PipelineVars {
            sum,
            comps: vec![biased, d, send_val],
            send: output,
        },
    ))
}

/// The §6.3.1 schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineSchedule {
    /// Megatron-LM baseline: AllReduce, pointwise kernels, replicated
    /// P2P (every rank sends the full tensor).
    Megatron,
    /// `AR-C-P2P-AG`: keep the AllReduce but slice the computations and
    /// P2P, gathering on the next group.
    ArCP2pAg,
    /// GShard-Eq / `RS-C-P2P-AG`: split the AllReduce too.
    RsCP2pAg,
    /// `ol(RS, fuse(C-P2P), AG)`: fused sliced send overlapped with the
    /// ReduceScatter and the next group's AllGather (Figure 7b).
    Overlap,
}

impl PipelineSchedule {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            PipelineSchedule::Megatron => "Megatron-LM",
            PipelineSchedule::ArCP2pAg => "AR-C-P2P-AG",
            PipelineSchedule::RsCP2pAg => "GShard-Eq (RS-C-P2P-AG)",
            PipelineSchedule::Overlap => "ol(RS,fuse(C-P2P),AG)",
        }
    }

    /// All schedules in presentation order (Figure 12).
    pub const ALL: [PipelineSchedule; 4] = [
        PipelineSchedule::Megatron,
        PipelineSchedule::ArCP2pAg,
        PipelineSchedule::RsCP2pAg,
        PipelineSchedule::Overlap,
    ];
}

/// Builds the pipeline program under a schedule. Returns the program,
/// the transformation log, and the output variable name (on the next
/// group).
///
/// # Errors
///
/// Propagates transformation errors (none occur for these programs).
pub fn apply_pipeline_schedule(
    schedule: PipelineSchedule,
) -> Result<(Program, Vec<String>, String), CoreError> {
    let mut log = Vec::new();
    match schedule {
        PipelineSchedule::Megatron => {
            let (p, _) = pipeline_program()?;
            Ok((p, log, "output".to_string()))
        }
        PipelineSchedule::ArCP2pAg => {
            // Written directly as a standalone program (the paper:
            // "slicing the output of AllReduce to perform sliced P2P
            // sends and computations, and finally an AllGather").
            let mut p = Program::new("transformer");
            let input = p.input("in", DType::F16, ["B", "S", "H"], Layout::Local);
            let b = p.input("b", DType::F16, ["H"], Layout::Replicated);
            let r = p.input("r", DType::F16, ["B", "S", "H"], Layout::Replicated);
            let sum = p.all_reduce(ReduceOp::Sum, input)?;
            p.set_name(sum, "sum")?;
            let sl = p.slice(sum)?;
            p.set_name(sl, "slSum")?;
            let biased = p.add(sl, b)?;
            let d = p.dropout(biased, 0.1)?;
            let r_sliced = p.slice(r)?;
            p.set_name(r_sliced, "slr")?;
            let send_val = p.add(d, r_sliced)?;
            p.set_name(send_val, "scSend")?;
            let sent = p.send(send_val, PeerSelector::NextGroupSameRank)?;
            let out = p.all_gather(sent)?;
            p.set_name(out, "agOut")?;
            p.set_io(&[input, b, r], &[out])?;
            fuse_send(&mut p, &[biased, d, send_val], sent)?;
            log.push("fuseSend = fuse(comps, send, SendFuse)".to_string());
            p.validate()?;
            Ok((p, log, "agOut".to_string()))
        }
        PipelineSchedule::RsCP2pAg | PipelineSchedule::Overlap => {
            let (mut p, vars) = pipeline_program()?;
            let (rs, ag) = split_all_reduce(&mut p, vars.sum)?;
            log.push("(rsSum, agSum) = split(sum, ARSplitRSAG)".to_string());
            // Reorder the AllGather past the computations *and* the
            // send: the gather lands on the next group.
            let mut region = vars.comps.clone();
            region.push(vars.send);
            let result = reorder_all_gather(&mut p, ag, &region)?;
            log.push("(scSend, agOut) = reorder(fuseSend, agSum, AGReorder)".to_string());
            let new_ag = result.gathers[0].1;
            let out_name = p.node(new_ag)?.name().to_string();
            fuse_send(&mut p, &vars.comps, vars.send)?;
            log.push("fuseSend = fuse(send, output, SendFuse)".to_string());
            if schedule == PipelineSchedule::Overlap {
                overlap(&mut p, &[rs, vars.send, new_ag])?;
                log.push("overlapOut = overlap(rsSum, scSend, agOut)".to_string());
            }
            p.validate()?;
            Ok((p, log, out_name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coconet_core::{Binding, CommConfig, Step};
    use coconet_runtime::{run_program, Inputs, RunOptions};
    use coconet_tensor::{CounterRng, Tensor};

    fn binding() -> Binding {
        Binding::new(4)
            .with_groups(2)
            .bind("B", 2)
            .bind("S", 4)
            .bind("H", 8)
    }

    fn inputs(binding: &Binding) -> Inputs {
        let rng = CounterRng::new(77);
        let world = binding.world_size();
        Inputs::new()
            .per_rank(
                "in",
                (0..world)
                    .map(|r| Tensor::randn([2, 4, 8], DType::F16, rng, (r * 1000) as u64))
                    .collect(),
            )
            .global("b", Tensor::randn([8], DType::F16, rng, 500_000))
            .global("r", Tensor::randn([2, 4, 8], DType::F16, rng, 600_000))
    }

    #[test]
    fn all_schedules_deliver_identical_data_to_next_group() {
        let binding = binding();
        let inputs = inputs(&binding);
        let opts = RunOptions::default().with_seed(3);
        let (base, _, base_out) = apply_pipeline_schedule(PipelineSchedule::Megatron).unwrap();
        let reference = run_program(&base, &binding, &inputs, opts)
            .unwrap()
            .global(&base_out)
            .unwrap();
        assert_eq!(reference.shape().dims(), &[2, 4, 8]);

        for schedule in PipelineSchedule::ALL {
            let (p, _, out_name) = apply_pipeline_schedule(schedule).unwrap();
            let got = run_program(&p, &binding, &inputs, opts)
                .unwrap()
                .global(&out_name)
                .unwrap();
            let diff = got.max_abs_diff(&reference);
            assert!(diff < 2e-2, "{} differs by {diff}", schedule.label());
        }
    }

    #[test]
    fn sliced_schedules_send_a_fraction_of_the_data() {
        let b = Binding::new(16)
            .with_groups(2)
            .bind("B", 8)
            .bind("S", 2048)
            .bind("H", 12288);
        let full: u64 = 8 * 2048 * 12288;
        // Megatron: replicated send of the full tensor per rank.
        let (p, _, _) = apply_pipeline_schedule(PipelineSchedule::Megatron).unwrap();
        let plan = coconet_core::lower(&p, &b, CommConfig::default()).unwrap();
        let megatron_sent = plan
            .steps
            .iter()
            .find_map(|s| match s {
                Step::SendRecv(sr) => Some(sr.elems_per_rank),
                _ => None,
            })
            .unwrap();
        assert_eq!(megatron_sent, full);
        // GShard-Eq: each rank sends 1/16.
        let (p, _, _) = apply_pipeline_schedule(PipelineSchedule::RsCP2pAg).unwrap();
        let plan = coconet_core::lower(&p, &b, CommConfig::default()).unwrap();
        let sliced_sent = plan
            .steps
            .iter()
            .find_map(|s| match s {
                Step::SendRecv(sr) => Some(sr.elems_per_rank),
                _ => None,
            })
            .unwrap();
        assert_eq!(sliced_sent, full / 16);
    }

    #[test]
    fn overlap_schedule_lowers_to_three_stage_pipeline() {
        let b = Binding::new(16)
            .with_groups(2)
            .bind("B", 2)
            .bind("S", 2048)
            .bind("H", 12288);
        let (p, _, _) = apply_pipeline_schedule(PipelineSchedule::Overlap).unwrap();
        let plan = coconet_core::lower(&p, &b, CommConfig::default()).unwrap();
        assert_eq!(plan.steps.len(), 1);
        if let Step::Overlapped(ol) = &plan.steps[0] {
            assert_eq!(ol.stages.len(), 3, "RS, fused P2P, AG (Figure 7b)");
        } else {
            panic!("expected overlapped step");
        }
    }
}
