//! Model configurations used in the paper's evaluation (§6).

/// A transformer language-model configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// Display name.
    pub name: &'static str,
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden dimension `H`.
    pub hidden: usize,
    /// Sequence length `S` used in evaluation.
    pub seq: usize,
    /// Attention heads.
    pub heads: usize,
    /// Vocabulary size (for the embedding parameters).
    pub vocab: usize,
}

impl ModelConfig {
    /// BERT 336M (NVIDIA BERT-Large).
    pub fn bert_336m() -> ModelConfig {
        ModelConfig {
            name: "BERT 336M",
            layers: 24,
            hidden: 1024,
            seq: 512,
            heads: 16,
            vocab: 30528,
        }
    }

    /// BERT 1.2B.
    pub fn bert_1_2b() -> ModelConfig {
        ModelConfig {
            name: "BERT 1.2B",
            layers: 24,
            hidden: 2048,
            seq: 512,
            heads: 32,
            vocab: 30528,
        }
    }

    /// BERT 3.9B — trainable with data parallelism only through
    /// CoCoNet's sliced optimizer state (§6.1.2).
    pub fn bert_3_9b() -> ModelConfig {
        ModelConfig {
            name: "BERT 3.9B",
            layers: 48,
            hidden: 2560,
            seq: 512,
            heads: 40,
            vocab: 30528,
        }
    }

    /// GPT-2 8.3B (Megatron-LM), used for model and pipeline
    /// parallelism (§6.2/6.3): S = 1024, H = 3072.
    pub fn gpt2_8_3b() -> ModelConfig {
        ModelConfig {
            name: "GPT-2 8.3B",
            layers: 72,
            hidden: 3072,
            seq: 1024,
            heads: 24,
            vocab: 50257,
        }
    }

    /// GPT-3 175B, used for pipeline parallelism (§6.3): S = 2048,
    /// H = 12288.
    pub fn gpt3_175b() -> ModelConfig {
        ModelConfig {
            name: "GPT-3 175B",
            layers: 96,
            hidden: 12288,
            seq: 2048,
            heads: 96,
            vocab: 50257,
        }
    }

    /// Approximate parameter count: `12 L H^2` for transformer blocks
    /// plus the embedding matrix.
    pub fn params(&self) -> u64 {
        12 * self.layers as u64 * (self.hidden as u64).pow(2)
            + self.vocab as u64 * self.hidden as u64
    }

    /// Forward+backward FLOPs per trained token (the standard `6 N`
    /// rule for dense transformers).
    pub fn train_flops_per_token(&self) -> f64 {
        6.0 * self.params() as f64
    }

    /// Forward-only FLOPs per token (`2 N`).
    pub fn infer_flops_per_token(&self) -> f64 {
        2.0 * self.params() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_names() {
        let within = |cfg: ModelConfig, expected: f64| {
            let p = cfg.params() as f64;
            assert!(
                (p / expected - 1.0).abs() < 0.15,
                "{}: {p} vs {expected}",
                cfg.name
            );
        };
        within(ModelConfig::bert_336m(), 336e6);
        within(ModelConfig::bert_1_2b(), 1.2e9);
        within(ModelConfig::bert_3_9b(), 3.9e9);
        within(ModelConfig::gpt2_8_3b(), 8.3e9);
        within(ModelConfig::gpt3_175b(), 175e9);
    }

    #[test]
    fn flops_rules() {
        let cfg = ModelConfig::bert_336m();
        assert_eq!(
            cfg.train_flops_per_token(),
            3.0 * cfg.infer_flops_per_token()
        );
    }
}
