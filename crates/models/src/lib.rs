//! # coconet-models
//!
//! The paper's workloads, expressed in the CoCoNet DSL with their
//! schedules, plus the memory and end-to-end models behind Tables 4-5:
//!
//! - [`optimizers`] — Adam and LAMB data-parallel updates (Figure 6)
//!   with the `AR-Opt` / `RS-Opt-AG` / `fuse(RS-Opt-AG)` schedules;
//! - [`model_parallel`] — Megatron-LM self-attention and MLP epilogues
//!   (Figure 3) with the Figure 11 schedules;
//! - [`pipeline`] — pipeline-parallel transformer boundaries (Figure 8)
//!   with the Figure 12 schedules;
//! - [`memory`] / [`training`] — the GPU memory model and iteration
//!   model behind Table 4, plus the *executable* data-parallel loop
//!   ([`training::train_data_parallel`]) that proves top-k gradient
//!   compression with error feedback converges like the dense wire;
//! - [`inference`] — the end-to-end inference models behind §6.2.2 and
//!   Table 5;
//! - [`serving`] — the long-lived tuning loop over a bounded plan
//!   cache: repeated (program, geometry) requests are answered from
//!   memory, bit-identical to the cold search.

#![warn(missing_docs)]

pub mod configs;
pub mod inference;
pub mod memory;
pub mod model_parallel;
pub mod optimizers;
pub mod pipeline;
pub mod serving;
pub mod training;

pub use configs::ModelConfig;
pub use memory::{MemoryModel, Strategy};
pub use optimizers::{Hyper, Optimizer, OptimizerSchedule};
pub use serving::{ServeLoop, ServeOutcome};
