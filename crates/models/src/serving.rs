//! The serving front end: a long-lived tuning loop over a plan cache.
//!
//! A serving process receives a stream of (program, geometry) requests
//! — mostly repeats — and must hand each one a tuned
//! [`ExecPlan`](coconet_core::ExecPlan). Re-running the autotuner per
//! request wastes milliseconds of cost-model sweeping on answers that
//! cannot have changed; [`ServeLoop`] pairs an
//! [`Autotuner`] with a bounded [`PlanCache`] so repeated requests are
//! answered from memory in microseconds, bit-identical to the cold
//! search (the search is deterministic). The loop also keeps the
//! running hit/miss/eviction counters an operator watches to size the
//! cache.

use std::time::{Duration, Instant};

use coconet_core::{
    Autotuner, Binding, CacheStats, CoreError, PlanCache, PlanEvaluator, Program, TuneReport,
};

/// One answered request: the tuner's report plus the serving-side
/// measurements.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The underlying report — `candidates[0]` is the winning plan,
    /// identical whether it came from the cache or a fresh search.
    pub report: TuneReport,
    /// Wall time this request took inside the serve loop.
    pub wall: Duration,
    /// Whether the cache answered (no sweep ran).
    pub hit: bool,
}

/// A tuner plus a bounded plan cache: the state a serving process keeps
/// alive across requests.
#[derive(Debug)]
pub struct ServeLoop {
    tuner: Autotuner,
    cache: PlanCache,
    requests: usize,
}

impl ServeLoop {
    /// A serve loop around `tuner` holding at most `capacity` cached
    /// winners.
    pub fn new(tuner: Autotuner, capacity: usize) -> ServeLoop {
        ServeLoop {
            tuner,
            cache: PlanCache::new(capacity),
            requests: 0,
        }
    }

    /// Answers one request: a cache hit returns the memoized winner
    /// (the report says `configs_evaluated == 0`), a miss runs the
    /// full search and installs it.
    ///
    /// # Errors
    ///
    /// Propagates program validation errors from the tuner.
    pub fn serve(
        &mut self,
        program: &Program,
        binding: &Binding,
        evaluator: &dyn PlanEvaluator,
    ) -> Result<ServeOutcome, CoreError> {
        let start = Instant::now();
        self.requests += 1;
        let report = self
            .tuner
            .tune_cached(program, binding, evaluator, &mut self.cache)?;
        let hit = report.cache.hit_age.is_some();
        Ok(ServeOutcome {
            report,
            wall: start.elapsed(),
            hit,
        })
    }

    /// Requests answered so far.
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// The cache's cumulative counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of winners currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Every cached entry's age, oldest first (see
    /// [`PlanCache::ages`]).
    pub fn plan_ages(&self) -> Vec<Duration> {
        self.cache.ages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizers::{optimizer_program, Optimizer};
    use crate::Hyper;
    use coconet_sim::Simulator;
    use coconet_topology::MachineSpec;

    #[test]
    fn repeated_requests_hit_and_match_the_cold_winner() {
        let (program, _) = optimizer_program(Optimizer::Adam, Hyper::default()).unwrap();
        let binding = Binding::new(16).bind("N", 1 << 20);
        let sim = Simulator::new(MachineSpec::paper_testbed(), 16, 1);
        let tuner = Autotuner::default().with_workers(1);
        let mut serve = ServeLoop::new(tuner, 8);

        let cold = serve.serve(&program, &binding, &sim).unwrap();
        assert!(!cold.hit);
        assert!(cold.report.configs_evaluated > 0);

        let warm = serve.serve(&program, &binding, &sim).unwrap();
        assert!(warm.hit);
        assert_eq!(warm.report.configs_evaluated, 0);
        let cold_best = cold.report.best().unwrap();
        let warm_best = warm.report.best().unwrap();
        assert_eq!(cold_best.config, warm_best.config);
        assert_eq!(cold_best.schedule, warm_best.schedule);
        assert_eq!(cold_best.time.to_bits(), warm_best.time.to_bits());

        // A different geometry is a different request: miss, new entry.
        let other = Binding::new(8).bind("N", 1 << 20);
        let sim8 = Simulator::new(MachineSpec::paper_testbed(), 8, 1);
        let third = serve.serve(&program, &other, &sim8).unwrap();
        assert!(!third.hit);
        assert_eq!(serve.cached_plans(), 2);
        assert_eq!(serve.requests(), 3);
        let stats = serve.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(serve.plan_ages().len(), 2);
    }
}
