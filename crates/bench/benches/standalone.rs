//! Standalone operator experiments (§6.2): speedup of the overlapped
//! schedule over the sequential baseline for a single model-parallel
//! layer and a single pipeline-stage boundary, across batch sizes.

use coconet_bench::{experiments, fmt_x, Report};

fn main() {
    let batches = [1usize, 2, 4, 8];

    let mut mp = Report::new(
        "Standalone model-parallel layer: overlap vs sequential (16 V100s)",
        &["B", "speedup"],
    );
    for b in batches {
        let x = experiments::standalone_model_parallel_speedup(b);
        mp.row(&[b.to_string(), fmt_x(x)]);
    }
    mp.note("paper: overlap hides most of the AllReduce behind the GEMM");
    mp.print();

    let mut pp = Report::new(
        "Standalone pipeline boundary: fused send+compute vs sequential",
        &["B", "speedup"],
    );
    for b in batches {
        let x = experiments::standalone_pipeline_speedup(b);
        pp.row(&[b.to_string(), fmt_x(x)]);
    }
    pp.print();
}
