//! Figure 10: data-parallel Adam/LAMB schedules vs AllReduce+FusedOpt
//! across tensor sizes on 256 GPUs.

use coconet_bench::{experiments, fmt_x, Report};
use coconet_models::Optimizer;

fn main() {
    let exps: Vec<u32> = (10..=30).step_by(2).collect();
    for opt in [Optimizer::Adam, Optimizer::Lamb] {
        let mut r = Report::new(
            format!("Figure 10: mixed-precision {} on 256 GPUs", opt.name()),
            &["elems", "AR-Opt", "GShard-Eq", "fuse(RS-Opt-AG)", "UB"],
        );
        for row in experiments::figure10(opt, &exps) {
            r.row(&[
                format!("2^{}", row.log2_elems),
                fmt_x(row.ar_opt),
                fmt_x(row.gshard),
                fmt_x(row.fused),
                fmt_x(row.upper_bound),
            ]);
        }
        r.note("paper: AR-Opt best until ~2^16; fused best after ~2^17, near UB at 2^30");
        r.note(match opt {
            Optimizer::Adam => "paper bands: 1.2x-1.7x for Adam, fused ~13% over GShard-Eq",
            Optimizer::Lamb => "paper bands: 1.35x-2.0x for LAMB, fused ~14% over GShard-Eq",
        });
        r.print();
    }
}
