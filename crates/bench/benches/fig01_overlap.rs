//! Figure 1: fine-grained overlap of MatMul with AllReduce
//! (16 V100s, [B*1024, 768] x [768, 3072], FP16).

use coconet_bench::{experiments, fmt_time, fmt_x, Report};

fn main() {
    let paper = [1.34, 1.36, 1.35, 1.33];
    let mut r = Report::new(
        "Figure 1: overlapped MatMul+AllReduce vs sequential (16 V100s)",
        &[
            "B",
            "sequential",
            "overlapped",
            "MM hidden",
            "speedup",
            "paper",
        ],
    );
    for (row, paper_x) in experiments::figure1().iter().zip(paper) {
        r.row(&[
            row.batch.to_string(),
            fmt_time(row.sequential),
            fmt_time(row.overlapped),
            format!("{:.0}%", row.matmul_hidden * 100.0),
            fmt_x(row.speedup()),
            fmt_x(paper_x),
        ]);
    }
    r.note("paper: hides >80% of MatMul time, 1.33-1.36x speedup");
    r.print();
}
