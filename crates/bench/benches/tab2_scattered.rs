//! Table 2: scattered-tensor vs single-contiguous-tensor parameter
//! update of all 360 BERT tensors on 256 GPUs.

use coconet_bench::{experiments, fmt_time, Report};
use coconet_models::Optimizer;

fn main() {
    let paper = [(33.89e-3, 33.21e-3), (37.04e-3, 36.71e-3)];
    let mut r = Report::new(
        "Table 2: scattered vs contiguous parameter update (360 BERT tensors)",
        &[
            "optimizer",
            "scattered",
            "contiguous",
            "overhead",
            "paper scattered",
            "paper contiguous",
        ],
    );
    for (opt, (ps, pc)) in [Optimizer::Adam, Optimizer::Lamb].into_iter().zip(paper) {
        let (scattered, contiguous) = experiments::table2(opt);
        r.row(&[
            opt.name().to_string(),
            fmt_time(scattered),
            fmt_time(contiguous),
            format!("{:.1}%", (scattered - contiguous) / contiguous * 100.0),
            fmt_time(ps),
            fmt_time(pc),
        ]);
    }
    r.note("paper: the scattered-tensor overhead is ~1-2%");
    r.print();
}
