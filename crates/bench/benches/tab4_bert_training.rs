//! Table 4: end-to-end BERT training on 256 GPUs — maximum micro batch
//! per implementation and CoCoNet's speedups.

use coconet_bench::{experiments, Report};

fn main() {
    let fmt_b = |b: Option<usize>| b.map_or("OOM".to_string(), |x| x.to_string());
    let fmt_s = |s: Option<f64>| s.map_or("-".to_string(), |x| format!("{x:.2}x"));
    let mut r = Report::new(
        "Table 4: BERT training (256 GPUs; global batch 8192 Adam / 65536 LAMB)",
        &[
            "optimizer",
            "model",
            "NV BERT",
            "DDP",
            "ZeRO",
            "CoCoNet",
            "vs NV",
            "vs DDP",
            "vs ZeRO",
        ],
    );
    for row in experiments::table4() {
        r.row(&[
            row.optimizer.to_string(),
            row.model.to_string(),
            fmt_b(row.batches[0]),
            fmt_b(row.batches[1]),
            fmt_b(row.batches[2]),
            fmt_b(row.batches[3]),
            fmt_s(row.speedups[0]),
            fmt_s(row.speedups[1]),
            fmt_s(row.speedups[2]),
        ]);
    }
    r.note("paper batches: Adam 32/32/32/32, 8/8/32/32, OOM/OOM/8/8; LAMB 64/64/64/128, 8/8/8/64, OOM/OOM/OOM/8");
    r.note("paper speedups: Adam 1.18/1.22/1.10, 1.53/1.52/1.10, -/-/1.22; LAMB 1.20/1.20/1.15, 1.67/1.68/1.64, -/-/-");
    r.print();
}
