//! Table 3: generated CUDA vs DSL program lines of code per schedule,
//! plus real autotuner exploration statistics.

use coconet_bench::{experiments, Report};
use coconet_models::Optimizer;

fn main() {
    let sections: Vec<(&str, Vec<experiments::Tab3Row>, &str)> = vec![
        (
            "Table 3a (Adam)",
            experiments::table3a(Optimizer::Adam),
            "paper: 16/24/150 generated, 12/16/17 program",
        ),
        (
            "Table 3a (LAMB)",
            experiments::table3a(Optimizer::Lamb),
            "paper: 80/140/220 generated, 15/17/18 program",
        ),
        (
            "Table 3b (model parallel)",
            experiments::table3b(),
            "paper: 20/140/~2k generated, 10/13/14 program",
        ),
        (
            "Table 3c (pipeline parallel)",
            experiments::table3c(),
            "paper: 20/140/~2k generated, 10/13/14 program",
        ),
    ];
    for (caption, rows, note) in sections {
        let mut r = Report::new(
            caption,
            &["schedule", "generated CUDA", "program in CoCoNet"],
        );
        for row in rows {
            r.row(&[
                row.schedule.clone(),
                row.generated_cuda.to_string(),
                row.program_loc.to_string(),
            ]);
        }
        r.note(note);
        r.print();
    }

    let mut r = Report::new(
        "Autotuner exploration (paper: 9-12 seconds per workload)",
        &[
            "workload",
            "schedules",
            "configs",
            "wall time",
            "best schedule",
        ],
    );
    for w in ["adam", "lamb", "model-parallel", "pipeline"] {
        let (schedules, configs, secs, best) = experiments::autotune_workload(w);
        r.row(&[
            w.to_string(),
            schedules.to_string(),
            configs.to_string(),
            format!("{secs:.2} s"),
            best,
        ]);
    }
    r.print();
}
