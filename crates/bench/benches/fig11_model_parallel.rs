//! Figure 11: model-parallel self-attention and MLP schedules for
//! GPT-2 8.3B sizes, normalized to Megatron-LM (16 GPUs).

use coconet_bench::{experiments, fmt_time, fmt_x, Report};

fn main() {
    let mut r = Report::new(
        "Figure 11: model-parallel schedules (GPT-2 8.3B, S=1024, H=3072)",
        &[
            "block",
            "B",
            "schedule",
            "time",
            "speedup",
            "breakdown (stacked bars)",
        ],
    );
    for row in experiments::figure11() {
        let breakdown = row
            .breakdown
            .iter()
            .map(|(label, t)| format!("{label} {}", fmt_time(*t)))
            .collect::<Vec<_>>()
            .join(" | ");
        r.row(&[
            row.block.to_string(),
            row.batch.to_string(),
            row.schedule.to_string(),
            fmt_time(row.time),
            fmt_x(row.speedup),
            breakdown,
        ]);
    }
    r.note("paper: MM-AR-C 1.05-1.07x, GShard-Eq 1.15-1.29x, overlap 1.42-1.70x");
    r.print();
}
