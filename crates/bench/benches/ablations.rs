//! Ablations the paper's analysis calls out but does not plot:
//! protocol choice per size, channel count, and scattered-tensor
//! bucket-size sensitivity.

use coconet_bench::{experiments, fmt_time, Report};

fn main() {
    let mut r = Report::new(
        "Ablation: NCCL protocol per message size (AllReduce, 256 GPUs)",
        &["elems", "LL", "LL128", "Simple", "winner"],
    );
    for (e, [ll, ll128, simple]) in experiments::ablation_protocols(&[10, 14, 18, 22, 26, 30]) {
        let winner = if ll <= ll128 && ll <= simple {
            "LL"
        } else if ll128 <= simple {
            "LL128"
        } else {
            "Simple"
        };
        r.row(&[
            format!("2^{e}"),
            fmt_time(ll),
            fmt_time(ll128),
            fmt_time(simple),
            winner.to_string(),
        ]);
    }
    r.note("the latency/bandwidth crossover that drives the autotuner's protocol choice");
    r.print();

    let mut r = Report::new(
        "Ablation: channel count (AllReduce of 2^30 FP16 elements)",
        &["channels", "time"],
    );
    for (ch, t) in experiments::ablation_channels(1 << 30) {
        r.row(&[ch.to_string(), fmt_time(t)]);
    }
    r.note("cross-node rings saturate once channels cover the 8 NICs");
    r.print();

    let mut r = Report::new(
        "Ablation: overlap buffer-tile count (Figure 1 shape, B=64)",
        &["tiles", "time"],
    );
    for (tiles, t) in experiments::ablation_tile_count(64) {
        r.row(&[tiles.to_string(), fmt_time(t)]);
    }
    r.note("1 tile = no overlap; past ~64 tiles spin-lock overhead wins (section 5.3)");
    r.print();

    let mut r = Report::new(
        "Ablation: collective algorithm per message size (AllReduce, 256 GPUs, \
         tuned protocol/channels per algorithm)",
        &["elems", "ring", "tree", "hierarchical", "switch", "winner"],
    );
    for (e, times) in experiments::ablation_algorithms(&[10, 14, 18, 22, 26, 30]) {
        let [ring, tree, hier, switch] = times;
        r.row(&[
            format!("2^{e}"),
            fmt_time(ring),
            fmt_time(tree),
            fmt_time(hier),
            fmt_time(switch),
            experiments::algo_winner(&times).to_string(),
        ]);
    }
    r.note(
        "section 5.1's logical topologies as a tuned dimension: trees win latency-bound \
         sizes, rings win bandwidth-bound ones, two-level hierarchical sits between",
    );
    r.print();

    let mut r = Report::new(
        "Ablation: collective algorithm per worker count (AllReduce of 2^18 F32 \
         elements, 1 rank/node, tuned protocol/channels per algorithm)",
        &[
            "workers",
            "ring",
            "tree",
            "hierarchical",
            "switch",
            "winner",
        ],
    );
    for (w, times) in experiments::ablation_switch_workers(&[2, 4, 8, 16, 32]) {
        let [ring, tree, hier, switch] = times;
        r.row(&[
            w.to_string(),
            fmt_time(ring),
            fmt_time(tree),
            fmt_time(hier),
            fmt_time(switch),
            experiments::algo_winner(&times).to_string(),
        ]);
    }
    r.note(
        "SwitchML's in-network aggregation: per-worker volume is 2n words at any k, \
         so the switch overtakes every host-side algorithm as the group grows",
    );
    r.print();

    let mut r = Report::new(
        "Ablation: scattered-tensor bucket size (334M elements, 360 tensors)",
        &["bucket elems", "index overhead"],
    );
    for (b, t) in experiments::ablation_bucket_size(334_000_000) {
        r.row(&[b.to_string(), fmt_time(t)]);
    }
    r.note("the paper picks 2^10 (=1024) element buckets (section 5.4)");
    r.print();
}
