//! Table 5: end-to-end pipeline-parallel inference with the
//! ol(RS,fuse(C-P2P),AG) schedule integrated into Megatron-LM.

use coconet_bench::{experiments, fmt_x, Report};

fn main() {
    let paper = [1.77, 1.33];
    let mut r = Report::new(
        "Table 5: pipeline-parallel inference speedup over Megatron-LM",
        &["model", "layers/node", "micro batch", "measured", "paper"],
    );
    for ((name, layers, batch, s), p) in experiments::table5().into_iter().zip(paper) {
        r.row(&[
            name.to_string(),
            layers.to_string(),
            batch.to_string(),
            fmt_x(s),
            fmt_x(p),
        ]);
    }
    r.print();
}
