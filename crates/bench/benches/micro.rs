//! Criterion micro-benchmarks of the substrates: ring collectives with
//! real data movement, GEMM, the event engine, and plan costing.

use coconet_core::CommConfig;
use coconet_runtime::{ring_all_reduce, Group, RankComm};
use coconet_sim::{Simulator, TaskGraph};
use coconet_tensor::{DType, ReduceOp, Tensor};
use coconet_topology::MachineSpec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::thread;

fn bench_ring_allreduce(c: &mut Criterion) {
    c.bench_function("runtime/ring_allreduce_4ranks_16k", |b| {
        b.iter(|| {
            let world = RankComm::world(4);
            let handles: Vec<_> = world
                .into_iter()
                .map(|comm| {
                    thread::spawn(move || {
                        let group = Group { start: 0, size: 4 };
                        let input = Tensor::full([16 * 1024], DType::F32, comm.rank() as f32);
                        ring_all_reduce(&comm, group, &input, ReduceOp::Sum)
                    })
                })
                .collect();
            for h in handles {
                black_box(h.join().unwrap());
            }
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_fn([128, 128], DType::F32, |i| (i % 7) as f32);
    let b = Tensor::from_fn([128, 128], DType::F32, |i| (i % 5) as f32);
    c.bench_function("tensor/matmul_128", |bch| {
        bch.iter(|| black_box(a.matmul(&b).unwrap()))
    });
}

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("sim/event_engine_pipeline_64x3", |b| {
        b.iter(|| {
            let mut g = TaskGraph::new();
            let r: Vec<_> = (0..3).map(|i| g.add_resource(format!("r{i}"))).collect();
            let mut prev: Vec<Option<coconet_sim::TaskId>> = vec![None; 3];
            for tile in 0..64 {
                for stage in 0..3 {
                    let mut deps = Vec::new();
                    if let Some(p) = prev[stage] {
                        deps.push(p);
                    }
                    if stage > 0 {
                        if let Some(p) = prev[stage - 1] {
                            deps.push(p);
                        }
                    }
                    prev[stage] =
                        Some(g.add_task(format!("t{tile}s{stage}"), r[stage], 1.0, &deps));
                }
            }
            black_box(g.schedule().makespan())
        })
    });
}

fn bench_plan_costing(c: &mut Criterion) {
    let sim = Simulator::new(MachineSpec::paper_testbed(), 256, 1);
    let plan = coconet_bench::experiments::demo_plan();
    c.bench_function("sim/time_plan", |b| {
        b.iter(|| black_box(sim.time_plan(&plan).total))
    });
    let _ = CommConfig::default();
}

criterion_group!(
    benches,
    bench_ring_allreduce,
    bench_matmul,
    bench_event_engine,
    bench_plan_costing
);
criterion_main!(benches);
