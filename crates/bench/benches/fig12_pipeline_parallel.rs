//! Figure 12: pipeline-parallel schedules for GPT-3 175B sizes across
//! 16 DGX-2 nodes, normalized to Megatron-LM.

use coconet_bench::{experiments, fmt_time, fmt_x, Report};

fn main() {
    let mut r = Report::new(
        "Figure 12: pipeline parallelism (GPT-3 175B, S=2048, H=12288)",
        &["B", "schedule", "time", "speedup"],
    );
    for row in experiments::figure12() {
        r.row(&[
            row.batch.to_string(),
            row.schedule.to_string(),
            fmt_time(row.time),
            fmt_x(row.speedup),
        ]);
    }
    r.note("paper: AR-C-P2P-AG 4.16-4.49x, GShard-Eq 7.06-7.19x, overlap 11.75-12.21x");
    r.print();
}
