//! §6.2.2: end-to-end model-parallel inference with the overlapped
//! schedule integrated into Megatron-LM.

use coconet_bench::{experiments, fmt_x, Report};

fn main() {
    let paper = [1.51, 1.48];
    let mut r = Report::new(
        "Section 6.2.2: model-parallel inference speedup over Megatron-LM",
        &["model", "measured", "paper"],
    );
    for ((name, s), p) in experiments::section622().into_iter().zip(paper) {
        r.row(&[name.to_string(), fmt_x(s), fmt_x(p)]);
    }
    r.print();
}
