//! The measured multi-tenant contention experiment behind the
//! `multitenant_throughput` trajectory row.
//!
//! A shared cluster rarely runs one tuned program at a time: K tenant
//! jobs contend for the same fabric. This module tunes the Adam
//! data-parallel workload once, lowers the winning (schedule, config)
//! at K scaled problem sizes — the classic mixed-tenant shape: one big
//! job plus progressively smaller ones — and replays all K through the
//! shared-fabric simulator ([`coconet_sim::contention_report`]) under
//! both wire-service disciplines:
//!
//! * **FIFO** — fair sharing; every active transfer gets `1/n` of the
//!   fabric (the GPS fluid limit of per-chunk round-robin);
//! * **Aware** — the contention-aware scheduler; the fabric
//!   consolidates onto the transfer with the least remaining
//!   communication (SRPT), the MLfabric-style policy the autotuner's
//!   `xfer` dimension exposes.
//!
//! The gates are the scheduling-theory facts the simulator must
//! reproduce: SRPT strictly wins mean job-completion time on any
//! non-degenerate size mix, both disciplines are work-conserving (so
//! on this comm-dominated workload the aware makespan stays within a
//! small slack of FIFO's), and sharing the fabric beats running the K
//! jobs back-to-back.

use coconet_core::{lower, KernelStep};
use coconet_sim::{contention_report, MultiTenantReport, Simulator, TenantJob};
use coconet_topology::MachineSpec;

use crate::experiments::{self, DP_RANKS};

/// Jobs sharing the fabric (the ISSUE's "K >= 4" regime).
pub const MT_JOBS: usize = 4;

/// Largest tenant's element count; job `i` runs at `MT_MAX_ELEMS >> i`.
pub const MT_MAX_ELEMS: u64 = 1 << 26;

/// Slack on the makespan comparison: both disciplines are
/// work-conserving, so on a comm-dominated workload their makespans
/// agree up to compute edge effects; 5% bounds those.
pub const MT_MAKESPAN_SLACK: f64 = 1.05;

/// One measured K-job contention comparison.
#[derive(Clone, Debug)]
pub struct MultiTenantRow {
    /// Workload the tenants run (an [`experiments::autotune_setup`]
    /// name).
    pub workload: &'static str,
    /// The tuned winner's label (schedule @ config).
    pub winner: String,
    /// Per-job `(name, solo_seconds)` — each job alone on the fabric.
    pub solo_s: Vec<(String, f64)>,
    /// The shared-fabric outcomes under both disciplines plus the
    /// serial baseline.
    pub report: MultiTenantReport,
}

impl MultiTenantRow {
    /// Back-to-back (serial) wall time — the no-sharing baseline.
    pub fn serial_s(&self) -> f64 {
        self.report.serial_s
    }

    /// Makespan under the contention-aware discipline — the row's
    /// headline number.
    pub fn aware_makespan_s(&self) -> f64 {
        self.report.aware.makespan_s
    }

    /// Violations of the contention contract (empty when healthy).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let fifo = &self.report.fifo;
        let aware = &self.report.aware;
        if aware.mean_completion_s >= fifo.mean_completion_s {
            v.push(format!(
                "aware mean completion {:.6e}s does not beat FIFO {:.6e}s — \
                 SRPT must strictly win the mean on a mixed-size tenant set",
                aware.mean_completion_s, fifo.mean_completion_s,
            ));
        }
        if aware.makespan_s > fifo.makespan_s * MT_MAKESPAN_SLACK {
            v.push(format!(
                "aware makespan {:.6e}s exceeds FIFO {:.6e}s by more than {}x — \
                 both disciplines are work-conserving",
                aware.makespan_s, fifo.makespan_s, MT_MAKESPAN_SLACK,
            ));
        }
        if aware.makespan_s >= self.report.serial_s {
            v.push(format!(
                "sharing ({:.6e}s) does not beat serial ({:.6e}s) — \
                 compute/comm overlap across tenants must buy something",
                aware.makespan_s, self.report.serial_s,
            ));
        }
        if self.solo_s.len() != MT_JOBS {
            v.push(format!(
                "expected {} tenants, measured {}",
                MT_JOBS,
                self.solo_s.len(),
            ));
        }
        v
    }
}

/// Tunes the workload once, lowers the winner at [`MT_JOBS`] scaled
/// sizes, and replays the tenant set through the shared-fabric
/// simulator.
pub fn multitenant_bench(workload: &'static str, workers: usize) -> MultiTenantRow {
    let (program, binding, sim) = experiments::autotune_setup(workload);
    let tuner = coconet_core::Autotuner::default().with_workers(workers);
    let report = tuner.tune(&program, &binding, &sim).expect("tunes");
    let winner = report.best().expect("search found a winner").clone();

    // The tenants all run the winner's rewritten program and config,
    // each at its own problem size on the same 256-GPU fabric: one big
    // job plus progressively smaller ones (halving N), the classic
    // mixed-tenant size distribution SRPT exists for. Each tenant is a
    // full training iteration: the backward pass that *produces* the
    // N-element gradient (local compute, never contended) followed by
    // the tuned exchange (the fabric phase) — the overlap of one
    // tenant's backward with another's exchange is exactly what
    // consolidation buys.
    let tenant_sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let cost = tenant_sim.cost_model();
    let jobs: Vec<TenantJob> = (0..MT_JOBS)
        .map(|i| {
            let n = MT_MAX_ELEMS >> i;
            let b = coconet_core::Binding::new(DP_RANKS).bind("N", n);
            let plan = lower(&winner.program, &b, winner.config).expect("winner lowers");
            let exchange = TenantJob::from_plan(
                format!("tenant{i}/2^{}", n.trailing_zeros()),
                &tenant_sim,
                &plan,
                1,
            );
            let backward = KernelStep {
                label: "backward".into(),
                bytes_read: 4 * n,
                bytes_written: 2 * n,
                flops: 2 * n,
                n_ops: 2,
            };
            TenantJob::new(
                exchange.name,
                exchange.compute_s + cost.kernel_time(&backward),
                exchange.comm_s,
                1,
            )
        })
        .collect();

    let mt = contention_report(&jobs);
    MultiTenantRow {
        workload,
        winner: winner.label(),
        solo_s: jobs.iter().map(|j| (j.name.clone(), j.solo_s())).collect(),
        report: mt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The K=4 Adam tenant set sits in the comm-dominated regime, so
    /// every gate holds: SRPT wins the mean, makespans agree within
    /// slack, sharing beats serial.
    #[test]
    fn multitenant_bench_is_healthy() {
        let row = multitenant_bench("adam", 2);
        assert_eq!(row.violations(), Vec::<String>::new());
        assert_eq!(row.solo_s.len(), MT_JOBS);
        // Solo times shrink with the problem size.
        for pair in row.solo_s.windows(2) {
            assert!(pair[0].1 > pair[1].1, "{:?}", row.solo_s);
        }
        // Serial is the sum of solos.
        let sum: f64 = row.solo_s.iter().map(|&(_, s)| s).sum();
        assert!((row.serial_s() - sum).abs() < 1e-12 * sum.max(1.0));
    }
}
