//! Wire-compression benchmarks: the simulated format ablation and the
//! measured, ledger-verified volume reduction.
//!
//! Two kinds of rows feed the trajectory:
//!
//! - `compression_ablation_{small,large}` — cost-model AllReduce times
//!   for dense / FP16 / top-k at 1 ‰, 10 ‰ and 100 ‰, each format at
//!   its best `algorithm × protocol`, on the paper testbed's 256
//!   GPUs. The small row shows dense winning the latency-bound regime
//!   (codec kernels cost more than they save); the large row shows the
//!   sparse wire winning outright — and the 100 ‰ point demonstrates
//!   the *sparse↔dense crossover*: on FP16 gradients its sparse form
//!   is bigger than the dense wire, so the switchover runs it dense.
//! - `ledger_compression` — a *measured* run of the runtime's
//!   compressed collectives on real rank threads at the acceptance
//!   geometry (2^24 F32 elements over 8 ranks in release builds):
//!   the [`BytesLedger`] must report exactly the analytic volumes —
//!   FP16 exactly half of dense, top-k at 10 ‰ the sparse formula and
//!   under 5 % of dense — with any deviation a gate failure.
//!
//! [`BytesLedger`]: coconet_runtime::BytesLedger

use coconet_compress::WireFormat;
use coconet_core::{CollAlgo, CollKind, CommConfig, DType, Protocol, ReduceOp};
use coconet_runtime::{
    all_reduce_wire, ring_all_reduce_wire_bytes, run_ranks, top_k_all_reduce_wire_bytes, Group,
};
use coconet_sim::Simulator;
use coconet_tensor::Tensor;
use coconet_topology::MachineSpec;

use crate::experiments::DP_RANKS;

/// The formats the ablation sweeps, with stable row labels.
pub const ABLATION_FORMATS: [(&str, WireFormat); 5] = [
    ("dense", WireFormat::Dense),
    ("fp16", WireFormat::Fp16),
    ("topk1", WireFormat::TopK { k_permille: 1 }),
    ("topk10", WireFormat::TopK { k_permille: 10 }),
    ("topk100", WireFormat::TopK { k_permille: 100 }),
];

/// Elements of the measured ledger run: the acceptance criterion's
/// 2^24 in release builds (the committed trajectory), 2^18 in debug
/// builds (the unit-test suite) — the volume *ratios* are
/// size-independent, so the gate checks the same invariants either
/// way.
pub const LEDGER_ELEMS: usize = if cfg!(debug_assertions) {
    1 << 18
} else {
    1 << 24
};

/// Ranks of the measured ledger run (the acceptance geometry).
pub const LEDGER_RANKS: usize = 8;

/// One size's simulated format ablation: AllReduce of `2^log2_elems`
/// FP16 gradients on the paper testbed, each format at its own best
/// `algorithm × protocol` (16 channels) — the comparison the
/// autotuner's format dimension makes.
pub fn ablation_formats(log2_elems: u32) -> Vec<(&'static str, f64)> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    ABLATION_FORMATS
        .iter()
        .map(|&(name, format)| {
            let mut best = f64::INFINITY;
            for algo in CollAlgo::ALL {
                for protocol in Protocol::ALL {
                    let config = CommConfig {
                        algo,
                        protocol,
                        channels: 16,
                        format,
                        ..CommConfig::default()
                    };
                    best = best.min(cost.collective_time(
                        CollKind::AllReduce,
                        1 << log2_elems,
                        DType::F16,
                        geom,
                        config,
                    ));
                }
            }
            (name, best)
        })
        .collect()
}

/// The winning format label of an ablation (ties resolve to the
/// earlier, less exotic entry — dense first).
pub fn format_winner(rows: &[(&'static str, f64)]) -> &'static str {
    let mut best = 0;
    for (i, r) in rows.iter().enumerate().skip(1) {
        if r.1 < rows[best].1 {
            best = i;
        }
    }
    rows[best].0
}

/// The measured ledger volumes of one compressed-collective run.
#[derive(Clone, Debug)]
pub struct CompressionLedgerRow {
    /// Elements reduced.
    pub elems: usize,
    /// Ranks participating.
    pub ranks: usize,
    /// Per-rank bytes the dense ring AllReduce sent.
    pub dense_bytes: u64,
    /// Per-rank bytes the FP16-wire ring AllReduce sent.
    pub fp16_bytes: u64,
    /// Per-rank bytes the 10 ‰ top-k sparse AllReduce sent.
    pub topk_bytes: u64,
}

impl CompressionLedgerRow {
    /// Dense-over-top-k volume reduction (the gated ratio).
    pub fn volume_reduction(&self) -> f64 {
        self.dense_bytes as f64 / self.topk_bytes as f64
    }

    /// Violations of the analytic-volume invariants (empty when every
    /// measured byte matches its formula and the acceptance ratios
    /// hold).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let dense_want = ring_all_reduce_wire_bytes(self.elems, self.ranks, DType::F32);
        if self.dense_bytes != dense_want {
            v.push(format!(
                "dense ring AllReduce sent {} bytes per rank, analytic volume is {dense_want}",
                self.dense_bytes
            ));
        }
        if 2 * self.fp16_bytes != self.dense_bytes {
            v.push(format!(
                "FP16 wire sent {} bytes per rank — not exactly half of dense ({})",
                self.fp16_bytes, self.dense_bytes
            ));
        }
        let topk_want = top_k_all_reduce_wire_bytes(self.elems, self.ranks, 10);
        if self.topk_bytes != topk_want {
            v.push(format!(
                "top-k AllReduce sent {} bytes per rank, analytic volume is {topk_want}",
                self.topk_bytes
            ));
        }
        if (self.topk_bytes as f64) >= 0.05 * self.dense_bytes as f64 {
            v.push(format!(
                "top-k at 10 permille moved {} bytes — not under 5 % of dense ({})",
                self.topk_bytes, self.dense_bytes
            ));
        }
        v
    }
}

/// Runs the three collectives on real rank threads and reads rank 0's
/// ledger for each — the measurement behind the `ledger_compression`
/// trajectory row.
pub fn compression_ledger_bench(elems: usize, ranks: usize) -> CompressionLedgerRow {
    let formats = [
        WireFormat::Dense,
        WireFormat::Fp16,
        WireFormat::TopK { k_permille: 10 },
    ];
    let results = run_ranks(ranks, move |comm| {
        let group = Group {
            start: 0,
            size: ranks,
        };
        let rank = comm.rank() as f32;
        let input = Tensor::from_fn([elems], DType::F32, move |i| rank + (i % 113) as f32 / 7.0);
        let mut bytes = [0u64; 3];
        for (slot, format) in bytes.iter_mut().zip(formats) {
            comm.reset_ledger();
            let out = all_reduce_wire(
                &comm,
                group,
                &input,
                ReduceOp::Sum,
                CollAlgo::Ring,
                0,
                format,
                None,
            );
            assert_eq!(out.numel(), elems);
            *slot = comm.ledger().bytes_sent;
        }
        bytes
    });
    let [dense_bytes, fp16_bytes, topk_bytes] = results[0];
    CompressionLedgerRow {
        elems,
        ranks,
        dense_bytes,
        fp16_bytes,
        topk_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shows_the_crossovers() {
        let small = ablation_formats(14);
        let large = ablation_formats(28);
        // Small messages: the codec kernels cost more than the saved
        // bytes — dense wins.
        assert_eq!(format_winner(&small), "dense");
        // Large messages: the sparse wire wins outright, and on FP16
        // gradients the 100 ‰ point has switched over to dense (same
        // wire, same time).
        assert!(format_winner(&large).starts_with("topk"));
        let at =
            |rows: &[(&str, f64)], name: &str| rows.iter().find(|r| r.0 == name).expect("row").1;
        assert!(at(&large, "topk10") < at(&large, "dense"));
        let rel = (at(&large, "topk100") - at(&large, "dense")).abs() / at(&large, "dense");
        assert!(rel < 1e-12, "topk100 switched over to the dense wire");
        // FP16-on-FP16 is byte-identical to dense at any size.
        let rel = (at(&large, "fp16") - at(&large, "dense")).abs() / at(&large, "dense");
        assert!(rel < 1e-12);
    }

    #[test]
    fn measured_ledger_matches_analytics_at_test_size() {
        let row = compression_ledger_bench(1 << 14, 8);
        assert_eq!(row.violations(), Vec::<String>::new());
        // The gated reduction is deterministic: dense/topk ≈ 29x at
        // 10 ‰ over 8 ranks, independent of the element count.
        assert!(row.volume_reduction() > 25.0);
    }
}
