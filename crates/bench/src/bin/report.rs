//! The benchmark trajectory reporter: runs the paper's headline
//! experiments through the sim-backed evaluator and emits
//! `BENCH_coconet.json`, the machine-readable perf record CI archives
//! on every run.
//!
//! ```text
//! report [--quick] [--out PATH] [--baseline PATH] [--tolerance FRACTION]
//!        [--write-baseline] [--drift-against PATH] [--trace-out PATH]
//! ```
//!
//! - `--quick`      CI mode: the fast experiment subset (still ≥ 6 rows)
//! - `--out`        output path (default `BENCH_coconet.json`)
//! - `--trace-out`  also write the `overlap_trace` experiment's Chrome
//!   trace-event JSON (the priority run) to PATH — loadable in
//!   Perfetto (ui.perfetto.dev) or `chrome://tracing`, one pid per
//!   rank, one tid per stripe lane
//! - `--baseline`   committed baseline to diff against; any experiment
//!   whose speedup regresses beyond the tolerance fails the run
//! - `--tolerance`  allowed speedup loss as a fraction (default `0.10`)
//! - `--write-baseline` rewrite the baseline file (the `--baseline`
//!   path, default `ci/bench_baseline.json`) from this run instead of
//!   diffing against it — the supported way to regenerate the
//!   committed baseline after an intentional perf change, replacing
//!   hand edits. Implies `--quick`: the baseline describes the quick
//!   set CI gates on, so a full-set baseline would make every `--quick`
//!   gate report its extra rows as disappeared
//! - `--drift-against` the CI staleness guard: compare this run
//!   against the committed baseline at PATH in *both* directions —
//!   an experiment missing from either side, or a speedup that moved
//!   beyond the tolerance either way, means the committed file no
//!   longer describes the code and must be regenerated with
//!   `--write-baseline`. Implies `--quick` like `--write-baseline`
//!
//! Exit status: `0` on success, `1` on a tuner-consistency failure
//! (pruned and exhaustive searches disagreeing), a speedup regression
//! against the baseline, or a stale committed baseline.

use std::process::ExitCode;

use coconet_bench::json::Json;
use coconet_bench::{fmt_bytes, fmt_time, fmt_x, trajectory, Report};

struct Args {
    quick: bool,
    out: String,
    baseline: Option<String>,
    tolerance: f64,
    write_baseline: bool,
    drift_against: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "BENCH_coconet.json".to_string(),
        baseline: None,
        tolerance: 0.10,
        write_baseline: false,
        drift_against: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
            }
            "--write-baseline" => args.write_baseline = true,
            "--drift-against" => args.drift_against = Some(value("--drift-against")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let mut args = parse_args()?;
    if (args.write_baseline || args.drift_against.is_some()) && !args.quick {
        // The committed baseline describes the quick set CI gates on; a
        // full-set baseline would fail every subsequent --quick check
        // with "experiment disappeared".
        println!("note: baseline modes imply --quick (the CI gate checks the quick set)");
        args.quick = true;
    }

    let trajectory = trajectory::collect(args.quick)?;
    let results = &trajectory.results;
    let doc = trajectory::to_json(results);

    let mut table = Report::new(
        if args.quick {
            "Benchmark trajectory (quick)"
        } else {
            "Benchmark trajectory"
        },
        &[
            "experiment",
            "baseline",
            "coconet",
            "speedup",
            "schedules",
            "configs",
            "tune wall",
        ],
    );
    for r in results {
        // The ledger rows carry bytes — and the trace row a unitless
        // fraction — in the baseline/coconet columns, not seconds;
        // they say so via a `unit` field.
        let unit = r.extra.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("unit", Json::Str(s)) => Some(s.as_str()),
            _ => None,
        });
        let fmt: fn(f64) -> String = match unit {
            Some(u) if u.contains("bytes") => fmt_bytes,
            Some(u) if u.contains("fraction") => |v| format!("{v:.3}"),
            _ => fmt_time,
        };
        table.row(&[
            r.name.to_string(),
            fmt(r.baseline_s),
            fmt(r.coconet_s),
            fmt_x(r.speedup()),
            r.schedules_explored.to_string(),
            r.configs_evaluated.to_string(),
            if r.tune_wall_ms > 0.0 {
                format!("{:.1} ms", r.tune_wall_ms)
            } else {
                "-".to_string()
            },
        ]);
    }
    table.note(
        "tab3 rows: parallel pruned tuner, verified against the exhaustive search \
         at the same worker count (identical winner, fewer configs, less wall-clock)",
    );
    if let Some(pc) = results.iter().find(|r| r.name == "plan_cache") {
        let num = |key: &str| {
            pc.extra
                .iter()
                .find_map(|(k, v)| if k == key { v.as_f64() } else { None })
                .unwrap_or(0.0)
        };
        table.note(format!(
            "plan cache: {} hits / {} misses / {} evictions; cold sweep {} \
             ({} configs) vs warm hit {} (0 configs, measured {})",
            num("cache_hits"),
            num("cache_misses"),
            num("cache_evictions"),
            fmt_time(num("cold_s")),
            num("cold_configs_evaluated"),
            fmt_time(pc.coconet_s),
            fmt_x(num("measured_speedup")),
        ));
    }
    table.print();

    // Write the trajectory before enforcing any gate so the file is
    // available for diagnosis even on a failing run.
    std::fs::write(&args.out, doc.render_pretty())
        .map_err(|e| format!("writing {}: {e}", args.out))?;
    println!("wrote {}", args.out);

    if let Some(path) = &args.trace_out {
        let json = coconet_bench::tracebench::take_last_trace()
            .ok_or("no trace was recorded (did the overlap_trace experiment run?)")?;
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path} (load it at ui.perfetto.dev or chrome://tracing)");
    }

    if !trajectory.gate_failures.is_empty() {
        return Err(trajectory.gate_failures.join("\n"));
    }

    let baseline_path = args.baseline.clone().or_else(|| {
        args.write_baseline
            .then(|| "ci/bench_baseline.json".to_string())
    });
    if args.write_baseline {
        // Regenerate the committed baseline from this run instead of
        // diffing against it.
        let path = baseline_path.expect("defaulted above");
        std::fs::write(&path, doc.render_pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("rewrote baseline {path}");
    } else if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let baseline = Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        trajectory::regression_check(&doc, &baseline, args.tolerance)?;
        println!(
            "no speedup regression beyond {:.0} % vs {path}",
            args.tolerance * 100.0
        );
    }

    if let Some(path) = &args.drift_against {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let committed = Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
        // Bidirectional: a regression in either direction — or a row
        // present on only one side — means the committed file no
        // longer describes the code.
        let stale = trajectory::regression_check(&doc, &committed, args.tolerance)
            .err()
            .into_iter()
            .chain(trajectory::regression_check(&committed, &doc, args.tolerance).err())
            .collect::<Vec<_>>();
        if !stale.is_empty() {
            return Err(format!(
                "committed baseline {path} is stale — regenerate it with \
                 `report --write-baseline` and commit the result:\n{}",
                stale.join("\n")
            ));
        }
        println!(
            "committed baseline {path} is fresh (within {:.0} % both ways)",
            args.tolerance * 100.0
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
