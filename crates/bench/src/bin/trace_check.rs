//! CI validation for the Chrome trace-event export: parses the JSON
//! document `report --trace-out` wrote (with the same in-repo parser
//! the trajectory gates use) and checks the trace-event structure —
//! a root object whose `traceEvents` is a non-empty array in which
//! every event carries a string `ph` and `name`, numeric `pid` and
//! `tid`, a numeric `ts` on every non-metadata phase, and a numeric
//! `dur` on every `"X"` complete event. At least one complete event
//! and one instant must be present (a trace with only metadata rows
//! means the recorder captured nothing).
//!
//! ```text
//! trace_check PATH
//! ```
//!
//! Exit status: `0` on a well-formed trace, `1` otherwise.

use std::process::ExitCode;

use coconet_bench::json::Json;

fn check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("root object has no `traceEvents` array".into());
    };
    if events.is_empty() {
        return Err("`traceEvents` is empty".into());
    }
    let mut complete = 0usize;
    let mut instants = 0usize;
    let mut metadata = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: no string `ph`"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: no string `name`"))?;
        for field in ["pid", "tid"] {
            ev.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: no numeric `{field}`"))?;
        }
        match ph {
            "M" => metadata += 1,
            "X" | "i" => {
                ev.get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: no numeric `ts`"))?;
                if ph == "X" {
                    ev.get("dur")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: `X` phase has no numeric `dur`"))?;
                    complete += 1;
                } else {
                    instants += 1;
                }
            }
            other => return Err(format!("event {i}: unexpected phase `{other}`")),
        }
    }
    if complete == 0 {
        return Err("no complete (`X`) span events in the trace".into());
    }
    if instants == 0 {
        return Err("no instant (`i`) events in the trace".into());
    }
    Ok(format!(
        "{path}: well-formed ({complete} spans, {instants} instants, {metadata} metadata rows)"
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check PATH");
        return ExitCode::FAILURE;
    };
    match check(&path) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
