//! # coconet-bench
//!
//! Benchmark harnesses reproducing every table and figure of the
//! paper's evaluation (§6). Each bench target prints the measured rows
//! next to the paper's reported values; `EXPERIMENTS.md` records both.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::{fmt_time, fmt_x, Report};
