//! # coconet-bench
//!
//! Benchmark harnesses reproducing every table and figure of the
//! paper's evaluation (§6). Each bench target prints the measured rows
//! next to the paper's reported values; `EXPERIMENTS.md` records both.

#![warn(missing_docs)]

pub mod compression;
pub mod experiments;
pub mod json;
pub mod kernelbench;
pub mod multitenant;
pub mod plancache;
pub mod report;
pub mod steady;
pub mod striping;
pub mod switchnet;
pub mod tracebench;
pub mod trajectory;
pub mod zerocopy;

pub use json::{Json, JsonError};
pub use report::{fmt_bytes, fmt_time, fmt_x, Report};
pub use trajectory::{collect, regression_check, to_json, ExperimentResult};
