//! A dependency-free JSON value: ordered objects, pretty rendering,
//! and a small recursive-descent parser.
//!
//! The workspace vendors no serde (third-party policy, see
//! `third_party/README.md`), and the benchmark trajectory file
//! `BENCH_coconet.json` needs both emitting (the `report` binary) and
//! parsing (the CI regression check against the committed baseline) —
//! hence this module. Object keys keep insertion order so renders are
//! deterministic and diffs against the committed baseline stay
//! readable.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted via shortest-roundtrip `f64` formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: message plus byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline —
    /// the stable format the committed baseline is diffed in.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_str(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

/// Numbers render as the shortest string that round-trips; integral
/// values drop the fractional part (`3` rather than `3.0`).
fn render_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; the trajectory schema never produces
        // them, but render defensively rather than emitting garbage.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // trajectory schema; map them to U+FFFD.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => s.push(b as char),
                _ => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let bytes = self.bytes;
                    let chunk = (1..=3)
                        .find_map(|extra| {
                            bytes
                                .get(start..start + 1 + extra)
                                .and_then(|b| std::str::from_utf8(b).ok())
                        })
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    self.pos = start + chunk.len();
                    s.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_trajectory_shape() {
        let doc = Json::obj([
            (
                "tab3_autotuner_adam",
                Json::obj([
                    ("baseline_s", Json::Num(0.0123)),
                    ("coconet_s", Json::Num(0.0061)),
                    ("speedup", Json::Num(2.016)),
                    ("schedules_explored", Json::Num(14.0)),
                    ("configs_evaluated", Json::Num(182.0)),
                    ("tune_wall_ms", Json::Num(41.5)),
                ]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.render_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
        assert_eq!(
            back.get("tab3_autotuner_adam")
                .and_then(|e| e.get("speedup"))
                .and_then(Json::as_f64),
            Some(2.016)
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(182.0).render_pretty(), "182\n");
        assert_eq!(Json::Num(0.5).render_pretty(), "0.5\n");
    }

    #[test]
    fn parses_escapes_arrays_and_unicode() {
        let v = Json::parse(r#"{"a": [1, -2.5e3, "x\n\"y\"", true, null], "µ": "ß"}"#).unwrap();
        let arr = match v.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-2500.0));
        assert_eq!(arr[2], Json::Str("x\n\"y\"".into()));
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
        assert_eq!(v.get("µ").and_then(Json::as_str), Some("ß"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"k" 1}"#).is_err());
        let err = Json::parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
