//! Measured (not simulated) runtime experiments for the zero-copy
//! tensor substrate.
//!
//! Unlike the §6 experiments, which time schedules under the cost
//! model, these rows *execute* the runtime's ring AllReduce on real
//! rank threads and measure two things:
//!
//! - `microbench_zero_copy` — wall-clock of the copy-on-write runtime
//!   against a faithful reconstruction of the seed runtime's data
//!   movement (deep-copied sends, slice-out/write-back accumulation,
//!   element-wise loops), proving the substrate rewrite pays off on
//!   the copy-bound path the paper targets;
//! - `ledger_allreduce` — the [`BytesLedger`] of the same run against
//!   the analytic ring volume, proving the wire traffic is exactly
//!   `2·(p−1)/p·n·dtype_size` per rank and the only materializations
//!   are the reduction's chunk detaches plus the output buffer.

use std::time::{Duration, Instant};

use coconet_runtime::{
    chunk_range, ring_all_reduce, ring_all_reduce_wire_bytes, run_ranks, BytesLedger, Group,
    RankComm,
};
use coconet_tensor::{DType, ReduceOp, Tensor};

/// Elements of the benchmarked AllReduce: 2^24 — the acceptance size —
/// in release builds, which produce every committed
/// `BENCH_coconet.json`. Debug builds (the unit-test suite) shrink to
/// 2^18 so `cargo test` does not spend a minute in the deliberately
/// slow deep-copy reconstruction.
pub const ZC_ELEMS: usize = if cfg!(debug_assertions) {
    1 << 18
} else {
    1 << 24
};

/// Rank threads of the benchmarked AllReduce.
pub const ZC_RANKS: usize = 8;

/// The speedup the regression gate tracks, capping the measured ratio:
/// the raw deep-copy/zero-copy ratio (~20x on a development machine)
/// is a cross-machine wall-clock comparison too volatile for a 10 %
/// gate, while any real copy regression collapses it to ~1x. Capping
/// the recorded speedup at 5x makes the committed baseline
/// machine-independent (every healthy run measures ≥ 5x) and keeps the
/// gate threshold far above the 2x acceptance floor.
pub const GATED_SPEEDUP_CAP: f64 = 5.0;

/// One zero-copy measurement: wall-clocks plus rank 0's ledger.
#[derive(Clone, Debug)]
pub struct ZeroCopyRow {
    /// Elements reduced.
    pub elems: usize,
    /// Ranks participating.
    pub ranks: usize,
    /// Deep-copy (seed-runtime) wall-clock, seconds — max across
    /// ranks, fastest of the iterations.
    pub deep_copy_s: f64,
    /// Copy-on-write runtime wall-clock, seconds.
    pub zero_copy_s: f64,
    /// Rank 0's ledger over the zero-copy run.
    pub ledger: BytesLedger,
    /// The analytic per-rank wire volume.
    pub analytic_bytes: u64,
}

impl ZeroCopyRow {
    /// Deep-copy over zero-copy speedup.
    pub fn speedup(&self) -> f64 {
        self.deep_copy_s / self.zero_copy_s
    }

    /// The copy-on-write bytes a minimal ring AllReduce must
    /// materialize: the `(p−1)/p` chunk detaches of the reduction.
    pub fn expected_cow_bytes(&self) -> u64 {
        ((self.ranks - 1) * (self.elems / self.ranks) * DType::F32.size_bytes()) as u64
    }

    /// Violations of the ledger invariants (empty when the run moved
    /// exactly its analytic volume and copied nothing beyond it).
    pub fn ledger_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.ledger.bytes_sent != self.analytic_bytes {
            v.push(format!(
                "ring AllReduce sent {} bytes per rank, analytic volume is {}",
                self.ledger.bytes_sent, self.analytic_bytes
            ));
        }
        if self.ledger.cow_bytes != self.expected_cow_bytes() {
            v.push(format!(
                "ring AllReduce copied {} bytes on write, the reduction needs exactly {}",
                self.ledger.cow_bytes,
                self.expected_cow_bytes()
            ));
        }
        // The reduction's detaches plus exactly one output buffer.
        let out_bytes = (self.elems * DType::F32.size_bytes()) as u64;
        if self.ledger.bytes_allocated != self.expected_cow_bytes() + out_bytes {
            v.push(format!(
                "ring AllReduce allocated {} bytes, expected {} (chunk detaches + output)",
                self.ledger.bytes_allocated,
                self.expected_cow_bytes() + out_bytes
            ));
        }
        v
    }
}

/// Runs the microbenchmark: `iters` timed AllReduces per mode, fastest
/// kept, per-run wall-clock = slowest rank (the collective finishes
/// when its last rank does).
pub fn zero_copy_microbench(elems: usize, ranks: usize, iters: usize) -> ZeroCopyRow {
    let mut zero_copy_s = f64::INFINITY;
    let mut deep_copy_s = f64::INFINITY;
    let mut ledger = BytesLedger::default();
    for _ in 0..iters.max(1) {
        let (t, l) = timed_run(elems, ranks, false);
        if t < zero_copy_s {
            zero_copy_s = t;
            ledger = l;
        }
        let (t, _) = timed_run(elems, ranks, true);
        deep_copy_s = deep_copy_s.min(t);
    }
    ZeroCopyRow {
        elems,
        ranks,
        deep_copy_s,
        zero_copy_s,
        ledger,
        analytic_bytes: ring_all_reduce_wire_bytes(elems, ranks, DType::F32),
    }
}

/// One timed AllReduce over fresh rank threads; returns the slowest
/// rank's wall-clock and rank 0's ledger.
fn timed_run(elems: usize, ranks: usize, deep: bool) -> (f64, BytesLedger) {
    let results = run_ranks(ranks, move |comm| {
        let group = Group {
            start: 0,
            size: ranks,
        };
        let rank = comm.rank() as f32;
        let input = Tensor::from_fn([elems], DType::F32, move |i| rank + (i % 97) as f32);
        comm.reset_ledger();
        let start = Instant::now();
        let out = if deep {
            deep_copy_ring_all_reduce(&comm, group, &input, ReduceOp::Sum)
        } else {
            ring_all_reduce(&comm, group, &input, ReduceOp::Sum)
        };
        let elapsed = start.elapsed();
        assert_eq!(out.numel(), elems);
        // Spot-check the reduction so neither mode can cheat.
        let want: f32 = (0..ranks).map(|r| r as f32).sum();
        assert_eq!(out.get(0), want);
        (elapsed, comm.ledger())
    });
    let wall = results
        .iter()
        .map(|(t, _)| *t)
        .max()
        .unwrap_or(Duration::ZERO);
    (wall.as_secs_f64(), results[0].1)
}

/// The seed runtime's ring AllReduce, reconstructed byte for byte:
/// every send deep-copies its chunk, chunks are sliced out of and
/// written back into a deep-copied accumulator each step, and the
/// reduction/assembly loops go element by element — the data movement
/// the copy-on-write substrate exists to eliminate.
fn deep_copy_ring_all_reduce(
    comm: &RankComm,
    group: Group,
    input: &Tensor,
    op: ReduceOp,
) -> Tensor {
    let k = group.size;
    let me = group.position(comm.rank());
    let n = input.numel();
    if k == 1 {
        return input.deep_clone();
    }
    let mut acc = input.deep_clone();
    let j = (me + k - 1) % k;
    for step in 0..k - 1 {
        let send_c = (j + k - step % k) % k;
        let recv_c = (j + k - step - 1) % k;
        let (s_off, s_len) = chunk_range(n, k, send_c);
        comm.send(group.next(comm.rank()), slice_copy(&acc, s_off, s_len));
        let incoming = comm.recv(group.prev(comm.rank()));
        let (r_off, r_len) = chunk_range(n, k, recv_c);
        let mut local = slice_copy(&acc, r_off, r_len);
        for i in 0..r_len {
            local.set(i, op.apply(local.get(i), incoming.get(i)));
        }
        for i in 0..r_len {
            acc.set(r_off + i, local.get(i));
        }
    }
    // All-gather with a deep copy per forwarded chunk.
    let mut chunks: Vec<Option<Tensor>> = vec![None; k];
    let (off, len) = chunk_range(n, k, me);
    chunks[me] = Some(slice_copy(&acc, off, len));
    for step in 0..k - 1 {
        let send_c = (me + k - step % k) % k;
        let recv_c = (me + k - step - 1) % k;
        let outgoing = chunks[send_c].as_ref().expect("by schedule").deep_clone();
        comm.send(group.next(comm.rank()), outgoing);
        chunks[recv_c] = Some(comm.recv(group.prev(comm.rank())));
    }
    let mut out = Tensor::zeros([n], input.dtype());
    let mut offset = 0usize;
    for c in chunks.into_iter().map(|c| c.expect("gathered")) {
        for i in 0..c.numel() {
            out.set(offset + i, c.get(i));
        }
        offset += c.numel();
    }
    out.reshape(input.shape().clone()).expect("same numel")
}

/// The seed's `slice_flat`: an element-wise materializing copy.
fn slice_copy(t: &Tensor, off: usize, len: usize) -> Tensor {
    Tensor::from_fn([len], t.dtype(), |i| t.get(off + i))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-size run: both modes agree, the speedup is sane, and
    /// the ledger invariants hold (the acceptance-size run lives in
    /// the trajectory, measured under `--release`).
    #[test]
    fn microbench_modes_agree_and_ledger_is_exact() {
        let row = zero_copy_microbench(1 << 12, 4, 1);
        assert!(row.deep_copy_s > 0.0 && row.zero_copy_s > 0.0);
        assert_eq!(
            row.analytic_bytes,
            ring_all_reduce_wire_bytes(1 << 12, 4, DType::F32)
        );
        assert_eq!(row.ledger_violations(), Vec::<String>::new());
    }

    /// The deep-copy reconstruction produces the exact reduction.
    #[test]
    fn deep_copy_baseline_is_correct() {
        let k = 3;
        let results = run_ranks(k, move |comm| {
            let group = Group { start: 0, size: k };
            let input = Tensor::from_fn([10], DType::F32, |i| (comm.rank() * 10 + i) as f32);
            let deep = deep_copy_ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
            let fast = ring_all_reduce(&comm, group, &input, ReduceOp::Sum);
            (deep, fast)
        });
        for (deep, fast) in &results {
            assert_eq!(deep.to_f32_vec(), fast.to_f32_vec());
        }
    }
}
