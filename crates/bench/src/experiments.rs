//! The experiment implementations behind every figure and table of §6.
//!
//! Each function computes the measured rows for one paper artifact;
//! the bench targets print them next to the paper's reported values.

use coconet_core::{
    lower, Binding, CollAlgo, CollKind, CollectiveStep, CommConfig, DType, FixedStep,
    FusedCollectiveStep, KernelStep, Protocol, ReduceOp, ScatterInfo, Step, WireFormat,
};
use coconet_models::inference::{
    model_parallel_epilogue_time, model_parallel_inference_speedup, pipeline_epilogue_time,
    pipeline_inference_speedup,
};
use coconet_models::model_parallel::{apply_block_schedule, Block, BlockSchedule};
use coconet_models::pipeline::{apply_pipeline_schedule, PipelineSchedule};
use coconet_models::training::estimate_iteration;
use coconet_models::{
    optimizers, MemoryModel, ModelConfig, Optimizer, OptimizerSchedule, Strategy,
};
use coconet_sim::{default_protocol, simulate_overlap, GroupGeom, Simulator};
use coconet_topology::MachineSpec;

/// Ranks in the paper's data-parallel experiments.
pub const DP_RANKS: usize = 256;

/// The best ring-algorithm `protocol × channels` configuration — the
/// sweep the paper's fixed-schedule experiments use. The algorithm
/// dimension is swept separately by [`ablation_algorithms`] and by the
/// autotuner itself.
fn best_config<F: Fn(CommConfig) -> f64>(eval: F) -> (CommConfig, f64) {
    best_config_for_algo(CollAlgo::Ring, eval)
}

/// The best `protocol × channels` configuration under one algorithm.
fn best_config_for_algo<F: Fn(CommConfig) -> f64>(algo: CollAlgo, eval: F) -> (CommConfig, f64) {
    let mut best: Option<(CommConfig, f64)> = None;
    for protocol in Protocol::ALL {
        for channels in [2usize, 4, 8, 16, 32, 64] {
            let config = CommConfig {
                algo,
                protocol,
                channels,
                format: WireFormat::Dense,
                ..CommConfig::default()
            };
            let t = eval(config);
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((config, t));
            }
        }
    }
    best.expect("non-empty sweep")
}

// ---------------------------------------------------------------- Figure 1

/// One Figure 1 measurement: overlapped MatMul+AllReduce vs sequential.
#[derive(Clone, Debug)]
pub struct Fig1Row {
    /// Batch size.
    pub batch: u64,
    /// Sequential MatMul + AllReduce time.
    pub sequential: f64,
    /// Overlapped pipeline time.
    pub overlapped: f64,
    /// Fraction of the MatMul hidden under the AllReduce.
    pub matmul_hidden: f64,
}

impl Fig1Row {
    /// Speedup of overlap over sequential.
    pub fn speedup(&self) -> f64 {
        self.sequential / self.overlapped
    }
}

/// Figure 1: `[B*1024, 768] x [768, 3072]` on 16 V100s (one DGX-2).
pub fn figure1() -> Vec<Fig1Row> {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    [8u64, 16, 32, 64]
        .into_iter()
        .map(|batch| {
            let mm = coconet_core::MatMulStep {
                label: "MatMul".into(),
                m: batch * 1024,
                k: 768,
                n: 3072,
                dtype: DType::F16,
            };
            let ar = FusedCollectiveStep {
                label: "AR".into(),
                algo: CollAlgo::Ring,
                elems: batch * 1024 * 3072,
                dtype: DType::F16,
                extra_bytes_read: 0,
                extra_bytes_written: 0,
                flops: 0,
                embedded_scalar_allreduces: 0,
                n_fused_ops: 0,
                scattered: None,
            };
            let (config, overlapped) = best_config(|c| {
                simulate_overlap(
                    cost,
                    &coconet_core::OverlappedStep {
                        label: "ol".into(),
                        stages: vec![
                            coconet_core::OverlapStage::MatMul(mm.clone()),
                            coconet_core::OverlapStage::FusedCollective(ar.clone()),
                        ],
                    },
                    geom,
                    false,
                    c,
                )
                .total
            });
            let t_mm = cost.matmul_time(&mm);
            let t_ar = cost.fused_collective_time(&ar, geom, config);
            let sequential = t_mm + t_ar;
            let matmul_hidden = ((sequential - overlapped) / t_mm).clamp(0.0, 1.0);
            Fig1Row {
                batch,
                sequential,
                overlapped,
                matmul_hidden,
            }
        })
        .collect()
}

// --------------------------------------------------------------- Figure 10

/// One Figure 10 point: speedups over AllReduce+FusedOpt at one size.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// log2 of the element count.
    pub log2_elems: u32,
    /// Baseline time (AR + Apex-fused optimizer, default NCCL config).
    pub baseline: f64,
    /// `AR-Opt` speedup.
    pub ar_opt: f64,
    /// GShard-Eq (`RS-Opt-AG`) speedup.
    pub gshard: f64,
    /// `fuse(RS-Opt-AG)` speedup.
    pub fused: f64,
    /// Upper bound (AllReduce alone) speedup.
    pub upper_bound: f64,
}

/// Figure 10: optimizer schedules across tensor sizes on 256 GPUs.
/// `exponents` selects which powers of two to evaluate.
pub fn figure10(opt: Optimizer, exponents: &[u32]) -> Vec<Fig10Row> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    let norms = match opt {
        Optimizer::Adam => 0usize,
        Optimizer::Lamb => 2,
    };
    exponents
        .iter()
        .map(|&e| {
            let n = 1u64 << e;
            let bytes = 2 * n;
            // Baseline: default NCCL config, AR + preprocessing + fused
            // optimizer kernel.
            let default_cfg = CommConfig {
                algo: CollAlgo::Ring,
                protocol: default_protocol(bytes),
                channels: 16,
                format: WireFormat::Dense,
                ..CommConfig::default()
            };
            let opt_kernel = KernelStep {
                label: "opt".into(),
                bytes_read: 14 * n,
                bytes_written: 14 * n,
                flops: 12 * n,
                n_ops: 12,
            };
            let baseline =
                cost.collective_time(CollKind::AllReduce, n, DType::F16, geom, default_cfg)
                    + cost.kernel_time(&opt_kernel)
                    + 25e-6
                    + norms as f64 * 20e-6;

            // AR-Opt: tuned AR + fused kernel, no preprocessing.
            let (_, ar_opt) = best_config(|c| {
                cost.collective_time(CollKind::AllReduce, n, DType::F16, geom, c)
                    + cost.kernel_time(&opt_kernel)
                    + norms as f64 * 20e-6
            });
            // GShard-Eq: RS + sliced kernel + AG (+ scalar ARs for norms).
            let sliced_kernel = KernelStep {
                label: "opt/k".into(),
                bytes_read: 14 * n / DP_RANKS as u64,
                bytes_written: 14 * n / DP_RANKS as u64,
                flops: 12 * n / DP_RANKS as u64,
                n_ops: 12,
            };
            let (_, gshard) = best_config(|c| {
                cost.collective_time(CollKind::ReduceScatter, n, DType::F16, geom, c)
                    + cost.kernel_time(&sliced_kernel)
                    + cost.collective_time(CollKind::AllGather, n, DType::F16, geom, c)
                    + norms as f64
                        * cost.collective_time(CollKind::AllReduce, 1, DType::F32, geom, c)
            });
            // fuse(RS-Opt-AG): one fused collective.
            let fused_step = FusedCollectiveStep {
                label: "fused".into(),
                algo: CollAlgo::Ring,
                elems: n,
                dtype: DType::F16,
                extra_bytes_read: 14 * n / DP_RANKS as u64,
                extra_bytes_written: 14 * n / DP_RANKS as u64,
                flops: 12 * n / DP_RANKS as u64,
                embedded_scalar_allreduces: norms,
                n_fused_ops: 12,
                scattered: None,
            };
            let (_, fused) = best_config(|c| cost.fused_collective_time(&fused_step, geom, c));
            // Upper bound: the AllReduce alone, tuned.
            let (_, ub) =
                best_config(|c| cost.collective_time(CollKind::AllReduce, n, DType::F16, geom, c));
            Fig10Row {
                log2_elems: e,
                baseline,
                ar_opt: baseline / ar_opt,
                gshard: baseline / gshard,
                fused: baseline / fused,
                upper_bound: baseline / ub,
            }
        })
        .collect()
}

// --------------------------------------------------------------- Figure 11

/// One Figure 11 bar: a schedule's time normalized to Megatron-LM.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Batch size.
    pub batch: u64,
    /// Which block (`self_attention` epilogue or MLP epilogue).
    pub block: &'static str,
    /// Schedule label.
    pub schedule: &'static str,
    /// Absolute time.
    pub time: f64,
    /// Speedup over Megatron-LM.
    pub speedup: f64,
    /// Per-step breakdown, `(label, seconds)` — the stacked bars.
    pub breakdown: Vec<(String, f64)>,
}

/// A schedule's measured total plus per-step breakdown.
type TimedSchedule = (BlockSchedule, f64, Vec<(String, f64)>);

/// Figure 11: model-parallel schedules for GPT-2 8.3B sizes on 16 GPUs.
pub fn figure11() -> Vec<Fig11Row> {
    let cfg = ModelConfig::gpt2_8_3b();
    let mut rows = Vec::new();
    for (block, name) in [
        (Block::SelfAttention, "[B,S,H/16]x[H/16,H]"),
        (Block::Mlp, "[B,S,4H/16]x[4H/16,H]"),
    ] {
        for batch in [8u64, 16] {
            let times: Vec<TimedSchedule> = BlockSchedule::ALL
                .iter()
                .map(|&s| {
                    let (t, breakdown) = block_time(&cfg, block, batch as usize, s);
                    (s, t, breakdown)
                })
                .collect();
            let megatron = times[0].1;
            for (s, t, breakdown) in times {
                rows.push(Fig11Row {
                    batch,
                    block: name,
                    schedule: s.label(),
                    time: t,
                    speedup: megatron / t,
                    breakdown,
                });
            }
        }
    }
    rows
}

fn block_time(
    cfg: &ModelConfig,
    block: Block,
    batch: usize,
    schedule: BlockSchedule,
) -> (f64, Vec<(String, f64)>) {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1);
    let binding = Binding::new(16)
        .bind("B", batch as u64)
        .bind("S", cfg.seq as u64)
        .bind("H", cfg.hidden as u64)
        .bind("H4", 4 * cfg.hidden as u64);
    let (p, _, _) = apply_block_schedule(block, schedule).expect("fixed schedule");
    let (config, total) = best_config(|c| {
        lower(&p, &binding, c)
            .map(|plan| sim.time_plan(&plan).total)
            .unwrap_or(f64::INFINITY)
    });
    let plan = lower(&p, &binding, config).expect("lowers");
    let timed = sim.time_plan(&plan);
    (
        total,
        timed
            .steps
            .iter()
            .map(|s| (s.label.clone(), s.seconds))
            .collect(),
    )
}

// --------------------------------------------------------------- Figure 12

/// One Figure 12 bar.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Micro batch size.
    pub batch: u64,
    /// Schedule label.
    pub schedule: &'static str,
    /// Absolute time.
    pub time: f64,
    /// Speedup over Megatron-LM.
    pub speedup: f64,
}

/// Figure 12: pipeline-parallel schedules for GPT-3 175B sizes across
/// 16 DGX-2 nodes.
pub fn figure12() -> Vec<Fig12Row> {
    let cfg = ModelConfig::gpt3_175b();
    let mut rows = Vec::new();
    for batch in [2u64, 4, 6, 8] {
        let times: Vec<(PipelineSchedule, f64)> = PipelineSchedule::ALL
            .iter()
            .map(|&s| {
                let t = best_pipeline_time(&cfg, batch as usize, s);
                (s, t)
            })
            .collect();
        let megatron = times[0].1;
        for (s, t) in times {
            rows.push(Fig12Row {
                batch,
                schedule: s.label(),
                time: t,
                speedup: megatron / t,
            });
        }
    }
    rows
}

fn best_pipeline_time(cfg: &ModelConfig, batch: usize, schedule: PipelineSchedule) -> f64 {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(16), 16, 16);
    let binding = Binding::new(16)
        .with_groups(16)
        .bind("B", batch as u64)
        .bind("S", cfg.seq as u64)
        .bind("H", cfg.hidden as u64);
    let (p, _, _) = apply_pipeline_schedule(schedule).expect("fixed schedule");
    best_config(|c| {
        lower(&p, &binding, c)
            .map(|plan| sim.time_plan(&plan).total)
            .unwrap_or(f64::INFINITY)
    })
    .1
}

// ----------------------------------------------------------------- Table 2

/// Table 2: scattered vs contiguous parameter update of all 360 BERT
/// tensors. Returns `(scattered, contiguous)` seconds per optimizer.
pub fn table2(opt: Optimizer) -> (f64, f64) {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    let n: u64 = 334_000_000; // BERT-Large elements
    let norms = match opt {
        Optimizer::Adam => 0usize,
        Optimizer::Lamb => 2,
    };
    let config = CommConfig {
        algo: CollAlgo::Ring,
        protocol: Protocol::Simple,
        channels: 16,
        format: WireFormat::Dense,
        ..CommConfig::default()
    };
    let fused = |scattered: Option<ScatterInfo>| FusedCollectiveStep {
        label: "fuse(RS-Opt-AG)".into(),
        algo: CollAlgo::Ring,
        elems: n,
        dtype: DType::F16,
        extra_bytes_read: 14 * n / DP_RANKS as u64,
        extra_bytes_written: 14 * n / DP_RANKS as u64,
        flops: 12 * n / DP_RANKS as u64,
        embedded_scalar_allreduces: norms,
        n_fused_ops: 12,
        scattered,
    };
    let scattered = cost.fused_collective_time(
        &fused(Some(ScatterInfo {
            n_tensors: 360,
            n_buckets: n / 1024,
        })),
        geom,
        config,
    );
    let contiguous = cost.fused_collective_time(&fused(None), geom, config);
    (scattered, contiguous)
}

// ----------------------------------------------------------------- Table 3

/// One Table 3 row: lines of code and autotuner bookkeeping.
#[derive(Clone, Debug)]
pub struct Tab3Row {
    /// Schedule label.
    pub schedule: String,
    /// Generated CUDA lines.
    pub generated_cuda: usize,
    /// DSL program + schedule lines.
    pub program_loc: usize,
}

/// Table 3a: the Adam/LAMB schedules.
pub fn table3a(opt: Optimizer) -> Vec<Tab3Row> {
    let binding = Binding::new(DP_RANKS).bind("N", 1 << 26);
    [
        OptimizerSchedule::ArOpt,
        OptimizerSchedule::RsOptAg,
        OptimizerSchedule::FusedRsOptAg,
    ]
    .into_iter()
    .map(|s| {
        let (p, log) =
            optimizers::apply_optimizer_schedule(opt, coconet_models::Hyper::default(), s)
                .expect("fixed schedule");
        let code = coconet_core::generate_cuda(&p, &binding).expect("generates");
        Tab3Row {
            schedule: s.label(opt),
            generated_cuda: code.total_loc(),
            program_loc: p.dsl_loc() + log.len(),
        }
    })
    .collect()
}

/// Table 3b: the model-parallel schedules.
pub fn table3b() -> Vec<Tab3Row> {
    let binding = Binding::new(16)
        .bind("B", 8)
        .bind("S", 1024)
        .bind("H", 3072)
        .bind("H4", 4 * 3072);
    [
        BlockSchedule::MmArC,
        BlockSchedule::MmRsCAg,
        BlockSchedule::Overlap,
    ]
    .into_iter()
    .map(|s| {
        let (p, log, _) = apply_block_schedule(Block::SelfAttention, s).expect("fixed schedule");
        let code = coconet_core::generate_cuda(&p, &binding).expect("generates");
        Tab3Row {
            schedule: s.label().to_string(),
            generated_cuda: code.total_loc(),
            program_loc: p.dsl_loc() + log.len(),
        }
    })
    .collect()
}

/// Table 3c: the pipeline-parallel schedules.
pub fn table3c() -> Vec<Tab3Row> {
    let binding = Binding::new(16)
        .with_groups(16)
        .bind("B", 2)
        .bind("S", 2048)
        .bind("H", 12288);
    [
        PipelineSchedule::ArCP2pAg,
        PipelineSchedule::RsCP2pAg,
        PipelineSchedule::Overlap,
    ]
    .into_iter()
    .map(|s| {
        let (p, log, _) = apply_pipeline_schedule(s).expect("fixed schedule");
        let code = coconet_core::generate_cuda(&p, &binding).expect("generates");
        Tab3Row {
            schedule: s.label().to_string(),
            generated_cuda: code.total_loc(),
            program_loc: p.dsl_loc() + log.len(),
        }
    })
    .collect()
}

/// The Table 3 autotuner workloads, by name.
pub const AUTOTUNE_WORKLOADS: [&str; 4] = ["adam", "lamb", "model-parallel", "pipeline"];

/// Builds the program, binding, and machine simulator of one Table 3
/// autotuner workload (see [`AUTOTUNE_WORKLOADS`]).
///
/// # Panics
///
/// Panics on an unknown workload name.
pub fn autotune_setup(which: &str) -> (coconet_core::Program, Binding, Simulator) {
    match which {
        "adam" | "lamb" => {
            let opt = if which == "adam" {
                Optimizer::Adam
            } else {
                Optimizer::Lamb
            };
            let (p, _) = optimizers::optimizer_program(opt, coconet_models::Hyper::default())
                .expect("builds");
            (
                p,
                Binding::new(DP_RANKS).bind("N", 1 << 26),
                Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1),
            )
        }
        "model-parallel" => {
            let (p, _) = coconet_models::model_parallel::block_program(Block::SelfAttention)
                .expect("builds");
            (
                p,
                Binding::new(16)
                    .bind("B", 8)
                    .bind("S", 1024)
                    .bind("H", 3072),
                Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1),
            )
        }
        "pipeline" => {
            let (p, _) = coconet_models::pipeline::pipeline_program().expect("builds");
            (
                p,
                Binding::new(16)
                    .with_groups(16)
                    .bind("B", 2)
                    .bind("S", 2048)
                    .bind("H", 12288),
                Simulator::new(MachineSpec::dgx2_cluster(16), 16, 16),
            )
        }
        other => panic!("unknown workload {other}"),
    }
}

/// Runs the real autotuner on a workload and reports (schedules
/// explored, configs evaluated, wall seconds, best label).
pub fn autotune_workload(which: &str) -> (usize, usize, f64, String) {
    let (program, binding, sim) = autotune_setup(which);
    let tuner = coconet_core::Autotuner::default();
    let report = tuner.tune(&program, &binding, &sim).expect("tunes");
    (
        report.schedules_explored,
        report.configs_evaluated,
        report.elapsed.as_secs_f64(),
        report.best().expect("baseline lowers").label(),
    )
}

// ----------------------------------------------------------------- Table 4

/// One Table 4 row.
#[derive(Clone, Debug)]
pub struct Tab4Row {
    /// Optimizer name.
    pub optimizer: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Max micro batch per strategy (None = OOM), Table 4 column order.
    pub batches: [Option<usize>; 4],
    /// CoCoNet speedup over each baseline (None when the baseline OOMs).
    pub speedups: [Option<f64>; 3],
}

/// Table 4: BERT training on 256 GPUs.
pub fn table4() -> Vec<Tab4Row> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let memory = MemoryModel::default();
    let mut rows = Vec::new();
    for (opt, global) in [(Optimizer::Adam, 8192usize), (Optimizer::Lamb, 65536)] {
        for cfg in [
            ModelConfig::bert_336m(),
            ModelConfig::bert_1_2b(),
            ModelConfig::bert_3_9b(),
        ] {
            let est =
                |s: Strategy| estimate_iteration(&sim, &memory, &cfg, opt, s, DP_RANKS, global);
            let estimates: Vec<_> = Strategy::ALL.iter().map(|&s| est(s)).collect();
            let coconet = estimates[3].clone().expect("CoCoNet always trains");
            let batches = [
                estimates[0].as_ref().map(|e| e.micro_batch),
                estimates[1].as_ref().map(|e| e.micro_batch),
                estimates[2].as_ref().map(|e| e.micro_batch),
                Some(coconet.micro_batch),
            ];
            let speedups = [
                estimates[0].as_ref().map(|e| e.total() / coconet.total()),
                estimates[1].as_ref().map(|e| e.total() / coconet.total()),
                estimates[2].as_ref().map(|e| e.total() / coconet.total()),
            ];
            rows.push(Tab4Row {
                optimizer: opt.name(),
                model: cfg.name,
                batches,
                speedups,
            });
        }
    }
    rows
}

// ------------------------------------------------------- §6.2.2 / Table 5

/// §6.2.2: end-to-end model-parallel inference speedups.
pub fn section622() -> Vec<(&'static str, f64)> {
    vec![
        (
            "BERT 3.9B",
            model_parallel_inference_speedup(&ModelConfig::bert_3_9b(), 8, 16),
        ),
        (
            "GPT-2 8.3B",
            model_parallel_inference_speedup(&ModelConfig::gpt2_8_3b(), 8, 16),
        ),
    ]
}

/// Table 5: end-to-end pipeline-parallel inference speedups.
pub fn table5() -> Vec<(&'static str, usize, usize, f64)> {
    vec![
        (
            "GPT-2 8.3B",
            5,
            16,
            pipeline_inference_speedup(&ModelConfig::gpt2_8_3b(), 16, 5),
        ),
        (
            "GPT-3 175B",
            6,
            2,
            pipeline_inference_speedup(&ModelConfig::gpt3_175b(), 2, 6),
        ),
    ]
}

// --------------------------------------------------------------- Ablations

/// Ablation: protocol choice per message size (AllReduce, 256 GPUs).
pub fn ablation_protocols(exponents: &[u32]) -> Vec<(u32, [f64; 3])> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    exponents
        .iter()
        .map(|&e| {
            let times = Protocol::ALL.map(|p| {
                cost.collective_time(
                    CollKind::AllReduce,
                    1 << e,
                    DType::F16,
                    geom,
                    CommConfig {
                        algo: CollAlgo::Ring,
                        protocol: p,
                        channels: 16,
                        format: WireFormat::Dense,
                        ..CommConfig::default()
                    },
                )
            });
            (e, times)
        })
        .collect()
}

/// Ablation: channel-count sweep for a large AllReduce.
pub fn ablation_channels(elems: u64) -> Vec<(usize, f64)> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    [2usize, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|ch| {
            (
                ch,
                cost.collective_time(
                    CollKind::AllReduce,
                    elems,
                    DType::F16,
                    geom,
                    CommConfig {
                        algo: CollAlgo::Ring,
                        protocol: Protocol::Simple,
                        channels: ch,
                        format: WireFormat::Dense,
                        ..CommConfig::default()
                    },
                ),
            )
        })
        .collect()
}

/// Name of the winning algorithm among
/// `[ring, tree, hierarchical, switch]` times, as produced by
/// [`ablation_algorithms`] — ties resolve in [`CollAlgo::ALL`] order
/// (ring first), matching the autotuner's own tie-breaking.
pub fn algo_winner(times: &[f64; 4]) -> &'static str {
    let names = ["ring", "tree", "hierarchical", "switch"];
    let mut best = 0;
    for (i, &t) in times.iter().enumerate().skip(1) {
        if t < times[best] {
            best = i;
        }
    }
    names[best]
}

/// Ablation: AllReduce time per collective algorithm and message size
/// (256 GPUs, each algorithm at its own best `protocol × channels`).
/// Returns `(log2_elems, [ring, tree, hierarchical, switch])` — the
/// size crossover the autotuner's algorithm dimension exploits: trees
/// win latency-bound small messages, rings win bandwidth-bound large
/// ones, the two-level hierarchical variant sits between, and the
/// in-network switch's constant-in-`k` volume pays a quantization
/// codec that keeps it behind the ring at this dense geometry (its win
/// is the *worker-count* axis — see [`ablation_switch_workers`]).
pub fn ablation_algorithms(exponents: &[u32]) -> Vec<(u32, [f64; 4])> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    exponents
        .iter()
        .map(|&e| {
            let times = CollAlgo::ALL.map(|algo| {
                best_config_for_algo(algo, |c| {
                    cost.collective_time(CollKind::AllReduce, 1 << e, DType::F16, geom, c)
                })
                .1
            });
            (e, times)
        })
        .collect()
}

/// Ablation: AllReduce time per collective algorithm as the *worker
/// count* grows, one rank per node (the SwitchML geometry), 2^18 F32
/// elements, each algorithm at its own best `protocol × channels`.
/// Returns `(workers, [ring, tree, hierarchical, switch])`.
///
/// This is the axis the in-network switch wins: every host-side
/// algorithm's time grows with `k` through `(k−1)/k` volume factors
/// and `log k`/`k−1` latency chains, while the switch moves `2·n`
/// words per worker at two fabric hops regardless of `k` — the
/// crossover the gated `ablation_switch_workers` trajectory row pins.
pub fn ablation_switch_workers(workers: &[usize]) -> Vec<(usize, [f64; 4])> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let cost = sim.cost_model();
    let elems = 1u64 << 18;
    workers
        .iter()
        .map(|&w| {
            let geom = GroupGeom {
                size: w,
                nodes_spanned: w,
                ranks_per_node: 1,
            };
            let times = CollAlgo::ALL.map(|algo| {
                best_config_for_algo(algo, |c| {
                    cost.collective_time(CollKind::AllReduce, elems, DType::F32, geom, c)
                })
                .1
            });
            (w, times)
        })
        .collect()
}

/// Ablation: buffer-tile granularity of the Figure 1 overlap (§5.3):
/// one tile cannot overlap at all; too many tiles drown in spin-lock
/// and per-chunk latency. Returns `(tiles, seconds)`.
pub fn ablation_tile_count(batch: u64) -> Vec<(usize, f64)> {
    let sim = Simulator::new(MachineSpec::dgx2_cluster(1), 16, 1);
    let geom = sim.group_geom();
    let cost = sim.cost_model();
    let step = coconet_core::OverlappedStep {
        label: "ol".into(),
        stages: vec![
            coconet_core::OverlapStage::MatMul(coconet_core::MatMulStep {
                label: "mm".into(),
                m: batch * 1024,
                k: 768,
                n: 3072,
                dtype: DType::F16,
            }),
            coconet_core::OverlapStage::FusedCollective(FusedCollectiveStep {
                label: "ar".into(),
                algo: CollAlgo::Ring,
                elems: batch * 1024 * 3072,
                dtype: DType::F16,
                extra_bytes_read: 0,
                extra_bytes_written: 0,
                flops: 0,
                embedded_scalar_allreduces: 0,
                n_fused_ops: 0,
                scattered: None,
            }),
        ],
    };
    let config = CommConfig {
        algo: CollAlgo::Ring,
        protocol: Protocol::Simple,
        channels: 16,
        format: WireFormat::Dense,
        ..CommConfig::default()
    };
    [1usize, 2, 4, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .map(|tiles| {
            let t = coconet_sim::simulate_overlap_with_tiles(
                cost,
                &step,
                geom,
                false,
                config,
                Some(tiles),
            )
            .total;
            (tiles, t)
        })
        .collect()
}

/// Ablation: scattered-tensor bucket-size sensitivity (Table 2's
/// mechanism, §5.4): smaller buckets cost more lookups but spread work
/// more evenly. Returns `(bucket_elems, overhead_seconds)`.
pub fn ablation_bucket_size(n: u64) -> Vec<(u64, f64)> {
    let sim = Simulator::new(MachineSpec::paper_testbed(), DP_RANKS, 1);
    let cost = sim.cost_model();
    [256u64, 512, 1024, 2048, 4096]
        .into_iter()
        .map(|b| (b, cost.scattered_overhead(360, n / b)))
        .collect()
}

// small helpers reused by benches ------------------------------------------

/// The standalone (epilogue-only) model-parallel speedup the paper's
/// §6.2.1 reports — reused by sanity tests.
pub fn standalone_model_parallel_speedup(batch: usize) -> f64 {
    let cfg = ModelConfig::gpt2_8_3b();
    model_parallel_epilogue_time(&cfg, batch, 16, BlockSchedule::Megatron)
        / model_parallel_epilogue_time(&cfg, batch, 16, BlockSchedule::Overlap)
}

/// The standalone pipeline speedup of Figure 12's best schedule.
pub fn standalone_pipeline_speedup(batch: usize) -> f64 {
    let cfg = ModelConfig::gpt3_175b();
    pipeline_epilogue_time(&cfg, batch, 16, 16, PipelineSchedule::Megatron)
        / pipeline_epilogue_time(&cfg, batch, 16, 16, PipelineSchedule::Overlap)
}

/// A trivially-costed plan used by the criterion micro-benchmarks.
pub fn demo_plan() -> coconet_core::ExecPlan {
    coconet_core::ExecPlan {
        name: "demo".into(),
        steps: vec![
            Step::Collective(CollectiveStep {
                label: "ar".into(),
                kind: CollKind::AllReduce,
                op: ReduceOp::Sum,
                algo: CollAlgo::Ring,
                elems: 1 << 24,
                dtype: DType::F16,
                scattered: None,
            }),
            Step::Fixed(FixedStep {
                label: "fixed".into(),
                seconds: 1e-6,
            }),
        ],
        config: CommConfig::default(),
    }
}

/// Geometry helper for tests.
pub fn paper_geom() -> GroupGeom {
    GroupGeom {
        size: DP_RANKS,
        nodes_spanned: 16,
        ranks_per_node: 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reproduces_band() {
        for row in figure1() {
            let s = row.speedup();
            assert!((1.1..1.9).contains(&s), "B={}: {s}", row.batch);
            assert!(
                row.matmul_hidden > 0.6,
                "B={}: hides {}",
                row.batch,
                row.matmul_hidden
            );
        }
    }

    #[test]
    fn figure10_shape_holds() {
        let rows = figure10(Optimizer::Adam, &[10, 14, 18, 22, 26, 30]);
        // Small sizes: AR-Opt is the best schedule.
        let small = &rows[0];
        assert!(small.ar_opt >= small.fused, "small: {small:?}");
        // Large sizes: fused is best and approaches the upper bound.
        let large = rows.last().unwrap();
        assert!(large.fused > large.ar_opt, "large: {large:?}");
        assert!(large.fused > large.gshard, "large: {large:?}");
        assert!(large.fused > 0.85 * large.upper_bound, "large: {large:?}");
        // Fused reaches a paper-scale speedup at 2^30.
        assert!((1.2..2.2).contains(&large.fused), "large: {large:?}");
    }

    #[test]
    fn figure11_ordering() {
        let rows = figure11();
        // For every (block, batch): megatron <= mm-ar-c <= gshard <= overlap.
        for chunk in rows.chunks(4) {
            assert!(chunk[1].speedup >= 1.0);
            assert!(chunk[2].speedup >= chunk[1].speedup);
            assert!(chunk[3].speedup >= chunk[2].speedup);
        }
    }

    #[test]
    fn figure12_factors() {
        let rows = figure12();
        for chunk in rows.chunks(4) {
            let gshard = chunk[2].speedup;
            let overlap = chunk[3].speedup;
            assert!(chunk[1].speedup > 2.0, "{:?}", chunk[1]);
            assert!(gshard > chunk[1].speedup);
            assert!((7.0..18.0).contains(&overlap), "{overlap}");
        }
    }

    #[test]
    fn table2_overhead_small() {
        for opt in [Optimizer::Adam, Optimizer::Lamb] {
            let (scattered, contiguous) = table2(opt);
            assert!(scattered > contiguous);
            assert!((scattered - contiguous) / contiguous < 0.05);
        }
    }

    #[test]
    fn table3_fused_generates_most_code() {
        let rows = table3a(Optimizer::Adam);
        assert!(rows[2].generated_cuda > rows[0].generated_cuda);
        assert!(rows[2].generated_cuda > rows[1].generated_cuda);
        let rows = table3b();
        assert!(rows[2].generated_cuda > 1000, "overlap is ~2k lines");
        for r in table3c() {
            assert!(r.program_loc < 60, "{}: {}", r.schedule, r.program_loc);
        }
    }

    #[test]
    fn table4_shape() {
        let rows = table4();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            // CoCoNet always trains and is never slower.
            assert!(row.batches[3].is_some());
            for s in row.speedups.iter().flatten() {
                assert!(*s >= 0.99, "{row:?}");
            }
        }
        // 3.9B Adam: NV and DDP OOM.
        let r39 = &rows[2];
        assert!(r39.batches[0].is_none() && r39.batches[1].is_none());
        // 3.9B LAMB: ZeRO also OOMs.
        let r39l = &rows[5];
        assert!(r39l.batches[2].is_none());
    }

    #[test]
    fn inference_speedups_in_band() {
        for (name, s) in section622() {
            assert!((1.1..2.0).contains(&s), "{name}: {s}");
        }
        for (name, _, _, s) in table5() {
            assert!((1.1..2.6).contains(&s), "{name}: {s}");
        }
    }

    #[test]
    fn ablations_behave() {
        // LL wins small, Simple wins large.
        let protos = ablation_protocols(&[10, 30]);
        let small = protos[0].1;
        assert!(small[0] < small[2], "LL beats Simple at 2^10");
        let large = protos[1].1;
        assert!(large[2] < large[0], "Simple beats LL at 2^30");
        // More channels help up to NIC count.
        let ch = ablation_channels(1 << 30);
        assert!(ch.last().unwrap().1 <= ch[0].1);
        // Bigger buckets -> less overhead.
        let buckets = ablation_bucket_size(334_000_000);
        assert!(buckets.last().unwrap().1 < buckets[0].1);
        // Tile granularity: some overlap beats none; extreme tiling
        // loses to spin-lock overhead.
        let tiles = ablation_tile_count(64);
        let one = tiles[0].1;
        let best = tiles.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
        let most = tiles.last().unwrap().1;
        assert!(best < one, "tiling must beat no-overlap");
        assert!(most > best, "over-tiling costs spin-locks");
        // The ring/tree/hierarchical size crossover has its own test
        // (algorithm_ablation_exhibits_size_crossover).
    }

    #[test]
    fn algorithm_ablation_exhibits_size_crossover() {
        let rows = ablation_algorithms(&[10, 30]);
        let (_, [ring_s, tree_s, hier_s, _switch_s]) = rows[0];
        let (_, [ring_l, tree_l, hier_l, _switch_l]) = rows[1];
        // Small messages: the tree's log-depth latency wins.
        assert!(tree_s < ring_s, "small: tree {tree_s} !< ring {ring_s}");
        assert!(tree_s < hier_s, "small: tree {tree_s} !< hier {hier_s}");
        // Large messages: the ring's bandwidth optimality wins, with
        // hierarchical between the two.
        assert!(ring_l < hier_l, "large: ring {ring_l} !< hier {hier_l}");
        assert!(hier_l < tree_l, "large: hier {hier_l} !< tree {tree_l}");
        // Hierarchical beats the flat ring's latency at small sizes
        // (fewer hops than 2(k-1) once the group spans 16 nodes).
        assert!(hier_s < ring_s, "small: hier {hier_s} !< ring {ring_s}");
    }

    #[test]
    fn switch_worker_sweep_exhibits_crossover() {
        let rows = ablation_switch_workers(&[2, 4, 8, 16, 32]);
        let (_, [ring_2, _, _, switch_2]) = rows[0];
        let (w_last, [ring_32, tree_32, hier_32, switch_32]) = rows[rows.len() - 1];
        assert_eq!(w_last, 32);
        // Two workers: quantization codec overhead outweighs the tiny
        // volume edge — the ring wins.
        assert!(ring_2 < switch_2, "w=2: ring {ring_2} !< switch {switch_2}");
        // 32 workers: the switch's constant volume beats every
        // host-side algorithm.
        assert!(switch_32 < ring_32, "w=32: switch !< ring");
        assert!(switch_32 < tree_32, "w=32: switch !< tree");
        assert!(switch_32 < hier_32, "w=32: switch !< hier");
        // And the switch's own time is flat-ish in k: growing the
        // group 16× costs it less than 2× (only the per-hop latency
        // terms move).
        assert!(
            switch_32 < 2.0 * switch_2,
            "switch time must be near-constant in worker count"
        );
    }
}
