//! The machine-readable benchmark trajectory: every CI run distills
//! the paper's headline experiments (Tables 2/3/4, Figures 1/10/11),
//! the collective-algorithm ablation (ring / tree / hierarchical /
//! switch, over message size and over worker count), the measured
//! runtime rows (`microbench_zero_copy`, `ledger_allreduce`,
//! `ledger_switch`), and the serving rows (`plan_cache`,
//! `multitenant_throughput`) into one `BENCH_coconet.json`, the
//! perf-trajectory source of truth the repository tracks across PRs.
//!
//! Schema — one top-level object, experiment name → row:
//!
//! ```json
//! {
//!   "tab3_autotuner_adam": {
//!     "baseline_s": 0.0123,
//!     "coconet_s": 0.0061,
//!     "speedup": 2.01,
//!     "schedules_explored": 14,
//!     "configs_evaluated": 182,
//!     "tune_wall_ms": 41.5
//!   }
//! }
//! ```
//!
//! Rows produced without running the autotuner report zero for the
//! exploration counters. The `tab3_*` rows additionally carry the
//! exhaustive-reference counters used by the pruned-vs-exhaustive
//! consistency check.

use coconet_core::Autotuner;
use coconet_models::{MemoryModel, ModelConfig, Optimizer, Strategy};
use coconet_sim::Simulator;
use coconet_topology::MachineSpec;

use crate::experiments;
use crate::json::Json;

/// Workers both trajectory tuner modes run on, so the pruned search is
/// compared against the exhaustive reference at identical parallelism
/// ("… on ≥ 2 worker threads").
pub const TUNE_WORKERS: usize = 2;

/// One experiment's distilled measurement.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Stable experiment key (JSON object key).
    pub name: &'static str,
    /// Baseline schedule time, seconds.
    pub baseline_s: f64,
    /// CoCoNet's best schedule time, seconds.
    pub coconet_s: f64,
    /// Schedules the autotuner explored (0 for analytic experiments).
    pub schedules_explored: usize,
    /// Configurations the autotuner costed (0 for analytic ones).
    pub configs_evaluated: usize,
    /// Autotuner wall-clock, milliseconds (0 for analytic ones).
    pub tune_wall_ms: f64,
    /// Extra per-experiment fields appended to the JSON row.
    pub extra: Vec<(String, Json)>,
}

impl ExperimentResult {
    /// Baseline-over-CoCoNet speedup.
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.coconet_s
    }

    fn analytic(name: &'static str, baseline_s: f64, coconet_s: f64) -> ExperimentResult {
        ExperimentResult {
            name,
            baseline_s,
            coconet_s,
            schedules_explored: 0,
            configs_evaluated: 0,
            tune_wall_ms: 0.0,
            extra: Vec::new(),
        }
    }
}

/// A collected trajectory: the experiment rows plus any tuner
/// consistency-gate failures. Rows are produced even when the gate
/// fails, so the trajectory file can always be written (and archived)
/// for diagnosis before the run is declared red.
#[derive(Clone, Debug)]
pub struct Trajectory {
    /// All experiment rows, in emission order.
    pub results: Vec<ExperimentResult>,
    /// Violations of the `tab3_*` pruned-vs-exhaustive invariants
    /// (identical winner, strictly fewer configurations, strictly
    /// less aggregate wall-clock); empty when everything held.
    pub gate_failures: Vec<String>,
}

/// Runs the trajectory experiments. `quick` (the CI mode) keeps the
/// fast two-thirds: all analytic rows plus the `adam` and
/// `model-parallel` tuner rows; the full mode adds the `lamb` and
/// `pipeline` tuner rows.
///
/// # Errors
///
/// Returns a description of the failure only when an experiment
/// cannot run at all (a workload failing to build or tune); tuner
/// consistency violations land in [`Trajectory::gate_failures`]
/// instead so the rows survive for diagnosis.
pub fn collect(quick: bool) -> Result<Trajectory, String> {
    let mut results = vec![
        fig1(),
        fig10(),
        fig11(),
        tab2(),
        tab4(),
        algo_ablation("ablation_algo_small", 14),
        algo_ablation("ablation_algo_large", 30),
        compression_ablation("compression_ablation_small", 14),
        compression_ablation("compression_ablation_large", 28),
    ];
    let (zc_rows, mut gate_failures) = zero_copy_experiments();
    results.extend(zc_rows);
    let (kernel_row, kernel_failures) = kernel_throughput_experiment();
    results.push(kernel_row);
    gate_failures.extend(kernel_failures);
    let (ch_row, ch_failures) = ablation_channels_experiment();
    results.push(ch_row);
    gate_failures.extend(ch_failures);
    let (switch_row, switch_failures) = switch_worker_ablation();
    results.push(switch_row);
    gate_failures.extend(switch_failures);
    let (sledger_row, sledger_failures) = switch_ledger_experiment();
    results.push(sledger_row);
    gate_failures.extend(sledger_failures);
    let (comp_row, comp_failures) = compression_ledger();
    results.push(comp_row);
    gate_failures.extend(comp_failures);
    let (steady_rows, steady_failures) = steady_experiments();
    results.extend(steady_rows);
    gate_failures.extend(steady_failures);
    let (trace_row, trace_failures) = overlap_trace_experiment();
    results.push(trace_row);
    gate_failures.extend(trace_failures);
    let (pc_row, pc_failures) = plan_cache_experiment();
    results.push(pc_row);
    gate_failures.extend(pc_failures);
    let (mt_row, mt_failures) = multitenant_experiment();
    results.push(mt_row);
    gate_failures.extend(mt_failures);
    let workloads: &[&str] = if quick {
        &["adam", "model-parallel"]
    } else {
        &["adam", "lamb", "model-parallel", "pipeline"]
    };
    let (tab3_rows, tab3_failures) = tab3_experiments(workloads)?;
    results.extend(tab3_rows);
    gate_failures.extend(tab3_failures);
    Ok(Trajectory {
        results,
        gate_failures,
    })
}

/// Figure 1's largest point: overlapped MatMul+AllReduce vs
/// sequential at batch 64.
fn fig1() -> ExperimentResult {
    let row = experiments::figure1().pop().expect("figure1 has rows");
    ExperimentResult::analytic("fig1_overlap", row.sequential, row.overlapped)
}

/// Figure 10 at 2^30 elements: Adam, baseline AR+FusedOpt vs
/// `fuse(RS-Opt-AG)`.
fn fig10() -> ExperimentResult {
    let row = experiments::figure10(Optimizer::Adam, &[30])
        .pop()
        .expect("figure10 has rows");
    ExperimentResult::analytic(
        "fig10_data_parallel",
        row.baseline,
        row.baseline / row.fused,
    )
}

/// Figure 11's first group (self-attention epilogue, batch 8):
/// Megatron-LM vs the overlapped schedule.
fn fig11() -> ExperimentResult {
    let rows = experiments::figure11();
    let group = &rows[..4];
    ExperimentResult::analytic("fig11_model_parallel", group[0].time, group[3].time)
}

/// The collective-algorithm ablation at one message size: AllReduce of
/// `2^log2_elems` FP16 elements on 256 GPUs, each algorithm at its own
/// best `protocol × channels`. The row's baseline is the flat ring and
/// its `coconet_s` is the best algorithm — so the small-message row
/// shows the tree's win (speedup > 1) and the large-message row shows
/// the ring staying optimal (speedup 1.0), the size crossover the
/// autotuner's algorithm dimension exists to exploit. The switch
/// column rides along but stays behind at this dense 8-rank/node
/// geometry; its win is the worker-count axis
/// ([`switch_worker_ablation`]).
fn algo_ablation(name: &'static str, log2_elems: u32) -> ExperimentResult {
    let (_, times) = experiments::ablation_algorithms(&[log2_elems])
        .pop()
        .expect("one exponent");
    let [ring, tree, hier, switch] = times;
    let best = ring.min(tree).min(hier).min(switch);
    let winner = experiments::algo_winner(&times);
    let mut row = ExperimentResult::analytic(name, ring, best);
    row.extra = vec![
        ("ring_s".into(), Json::Num(ring)),
        ("tree_s".into(), Json::Num(tree)),
        ("hierarchical_s".into(), Json::Num(hier)),
        ("switch_s".into(), Json::Num(switch)),
        ("winner".into(), Json::Str(winner.into())),
        ("log2_elems".into(), Json::Num(f64::from(log2_elems))),
    ];
    row
}

/// The in-network aggregation ablation over *worker count*: AllReduce
/// of 2^18 F32 elements at 1 rank/node, every algorithm at its own
/// best `protocol × channels`, at 2 and at 32 workers. The row's
/// baseline is the best host-side algorithm at 32 workers and its
/// `coconet_s` is the switch — so the gated speedup is the in-network
/// win at scale, while the 2-worker columns pin the other side of the
/// crossover (a plain ring beats the switch's quantize/dequantize
/// latency in a tiny group). Both ends of the crossover are enforced
/// as gate failures, the same treatment as a ledger inconsistency.
fn switch_worker_ablation() -> (ExperimentResult, Vec<String>) {
    let rows = experiments::ablation_switch_workers(&[2, 32]);
    let (_, [ring_2, tree_2, hier_2, switch_2]) = rows[0];
    let (_, [ring_32, tree_32, hier_32, switch_32]) = rows[1];
    let host_best_32 = ring_32.min(tree_32).min(hier_32);
    let mut row = ExperimentResult::analytic("ablation_switch_workers", host_best_32, switch_32);
    row.extra = vec![
        ("ring_2_s".into(), Json::Num(ring_2)),
        ("switch_2_s".into(), Json::Num(switch_2)),
        ("ring_32_s".into(), Json::Num(ring_32)),
        ("tree_32_s".into(), Json::Num(tree_32)),
        ("hierarchical_32_s".into(), Json::Num(hier_32)),
        ("switch_32_s".into(), Json::Num(switch_32)),
        (
            "winner_2".into(),
            Json::Str(experiments::algo_winner(&rows[0].1).into()),
        ),
        (
            "winner_32".into(),
            Json::Str(experiments::algo_winner(&rows[1].1).into()),
        ),
        ("log2_elems".into(), Json::Num(18.0)),
    ];
    let mut failures = Vec::new();
    if switch_32 >= host_best_32 {
        failures.push(format!(
            "ablation_switch_workers: switch lost at 32 workers \
             ({switch_32:.3e}s vs best host-side {host_best_32:.3e}s) — \
             in-network aggregation must win at scale"
        ));
    }
    if switch_2 <= ring_2.min(tree_2).min(hier_2) {
        failures.push(format!(
            "ablation_switch_workers: switch won at 2 workers \
             ({switch_2:.3e}s) — the crossover collapsed, check the \
             switch_process knob"
        ));
    }
    (row, failures)
}

/// The measured in-network aggregation row: real [`switch_all_reduce`]
/// runs of [`SWITCH_ELEMS`](crate::switchnet::SWITCH_ELEMS) F32
/// elements over 8 and over 2 worker threads. The row's
/// baseline/coconet pair is *bytes per worker* (measured round trip
/// over the analytic `2·n` quantization words), so its speedup is
/// exactly 1.0 for a healthy run at any group size. Volume deviations
/// — a worker off the `2·n` contract, per-worker bytes moving with
/// the worker count, dataplane traffic leaking onto a worker's books —
/// are gate failures.
///
/// [`switch_all_reduce`]: coconet_runtime::switch_all_reduce
fn switch_ledger_experiment() -> (ExperimentResult, Vec<String>) {
    use crate::switchnet::{switch_ledger_bench, SWITCH_ELEMS, SWITCH_RANKS_SMALL};
    let row = switch_ledger_bench(SWITCH_ELEMS);
    let mut result = ExperimentResult::analytic(
        "ledger_switch",
        row.per_worker_bytes() as f64,
        row.analytic_bytes() as f64,
    );
    result.extra = vec![
        ("unit".into(), Json::Str("bytes per worker".into())),
        ("elems".into(), Json::Num(row.elems as f64)),
        ("ranks".into(), Json::Num(row.ranks as f64)),
        (
            "bytes_sent".into(),
            Json::Num(row.ledgers[0].bytes_sent as f64),
        ),
        (
            "bytes_received".into(),
            Json::Num(row.ledgers[0].bytes_received as f64),
        ),
        (
            "analytic_bytes".into(),
            Json::Num(row.analytic_bytes() as f64),
        ),
        (
            "small_group_ranks".into(),
            Json::Num(SWITCH_RANKS_SMALL as f64),
        ),
        (
            "small_group_bytes".into(),
            Json::Num(row.small_group_bytes() as f64),
        ),
        (
            "dataplane_bytes".into(),
            Json::Num(row.dataplane_bytes() as f64),
        ),
    ];
    let failures = row
        .violations()
        .into_iter()
        .map(|v| format!("ledger_switch: {v}"))
        .collect();
    (result, failures)
}

/// The measured zero-copy rows: one real ring AllReduce of
/// [`ZC_ELEMS`](crate::zerocopy::ZC_ELEMS) F32 elements over
/// [`ZC_RANKS`](crate::zerocopy::ZC_RANKS) rank threads, reported
/// twice — as the wall-clock microbenchmark against the reconstructed
/// deep-copy seed runtime, and as the [`BytesLedger`] row whose
/// baseline/coconet pair is *bytes per rank* (measured wire bytes over
/// the analytic `2·(p−1)/p·n·dtype_size`, so its speedup is exactly
/// 1.0 for a zero-copy run). Ledger-invariant violations — wire bytes
/// or materializations beyond the analytic volume — are returned as
/// gate failures, the same treatment as a tuner inconsistency.
///
/// [`BytesLedger`]: coconet_runtime::BytesLedger
fn zero_copy_experiments() -> (Vec<ExperimentResult>, Vec<String>) {
    use crate::zerocopy::{zero_copy_microbench, GATED_SPEEDUP_CAP, ZC_ELEMS, ZC_RANKS};
    // Debug builds (the test suite) keep the single-iteration run;
    // release CI takes the fastest of two.
    let iters = if cfg!(debug_assertions) { 1 } else { 2 };
    let row = zero_copy_microbench(ZC_ELEMS, ZC_RANKS, iters);
    // The row's baseline is the deep-copy wall, capped so the gated
    // speedup never exceeds GATED_SPEEDUP_CAP (see its docs); the raw
    // measurement rides along in `measured_speedup`/`deep_copy_s`.
    let gated_baseline = row.deep_copy_s.min(row.zero_copy_s * GATED_SPEEDUP_CAP);
    let mut micro =
        ExperimentResult::analytic("microbench_zero_copy", gated_baseline, row.zero_copy_s);
    micro.extra = vec![
        ("elems".into(), Json::Num(row.elems as f64)),
        ("ranks".into(), Json::Num(row.ranks as f64)),
        ("iters".into(), Json::Num(iters as f64)),
        ("deep_copy_s".into(), Json::Num(row.deep_copy_s)),
        ("measured_speedup".into(), Json::Num(row.speedup())),
    ];
    let mut ledger = ExperimentResult::analytic(
        "ledger_allreduce",
        row.ledger.bytes_sent as f64,
        row.analytic_bytes as f64,
    );
    ledger.extra = vec![
        ("unit".into(), Json::Str("bytes per rank".into())),
        ("bytes_sent".into(), Json::Num(row.ledger.bytes_sent as f64)),
        (
            "analytic_bytes".into(),
            Json::Num(row.analytic_bytes as f64),
        ),
        ("sends".into(), Json::Num(row.ledger.sends as f64)),
        ("cow_bytes".into(), Json::Num(row.ledger.cow_bytes as f64)),
        (
            "expected_cow_bytes".into(),
            Json::Num(row.expected_cow_bytes() as f64),
        ),
        (
            "allocations".into(),
            Json::Num(row.ledger.allocations as f64),
        ),
        (
            "bytes_allocated".into(),
            Json::Num(row.ledger.bytes_allocated as f64),
        ),
    ];
    let failures = row
        .ledger_violations()
        .into_iter()
        .map(|v| format!("ledger_allreduce: {v}"))
        .collect();
    (vec![micro, ledger], failures)
}

/// The measured kernel-engine row: real reductions of
/// [`KB_ELEMS`](crate::kernelbench::KB_ELEMS) F32 elements through the
/// seed's per-element dispatch path, the monomorphic serial loop, and
/// the worker-pool parallel loop. The row's baseline is the dispatch
/// wall capped at `engine × KERNEL_SPEEDUP_CAP` — the same treatment
/// as the zero-copy microbenchmark — so a healthy release run pins the
/// gated speedup at exactly 5x while the raw ratio and the per-path
/// GB/s ride along in the extras. An engine slower than the
/// [`KERNEL_MIN_SPEEDUP`](crate::kernelbench::KERNEL_MIN_SPEEDUP)
/// floor is a gate failure.
fn kernel_throughput_experiment() -> (ExperimentResult, Vec<String>) {
    use crate::kernelbench::{kernel_microbench, KB_ELEMS, KERNEL_SPEEDUP_CAP};
    // Debug builds (the test suite) keep the single-iteration run;
    // release CI takes the fastest of three.
    let iters = if cfg!(debug_assertions) { 1 } else { 3 };
    let row = kernel_microbench(KB_ELEMS, iters);
    let engine_s = row.best_engine_s();
    let gated_baseline = row.dispatch_s.min(engine_s * KERNEL_SPEEDUP_CAP);
    let mut result = ExperimentResult::analytic("kernel_throughput", gated_baseline, engine_s);
    result.extra = vec![
        ("elems".into(), Json::Num(row.elems as f64)),
        ("iters".into(), Json::Num(iters as f64)),
        ("workers".into(), Json::Num(row.workers as f64)),
        ("dispatch_s".into(), Json::Num(row.dispatch_s)),
        ("mono_s".into(), Json::Num(row.mono_s)),
        ("parallel_s".into(), Json::Num(row.parallel_s)),
        (
            "dispatch_gb_s".into(),
            Json::Num(row.throughput_gb_s(row.dispatch_s)),
        ),
        (
            "mono_gb_s".into(),
            Json::Num(row.throughput_gb_s(row.mono_s)),
        ),
        (
            "parallel_gb_s".into(),
            Json::Num(row.throughput_gb_s(row.parallel_s)),
        ),
        ("measured_speedup".into(), Json::Num(row.speedup())),
    ];
    let failures = row
        .violations()
        .into_iter()
        .map(|v| format!("kernel_throughput: {v}"))
        .collect();
    (result, failures)
}

/// The measured channel-striping row: real ring AllReduces of
/// [`CH_ELEMS`](crate::striping::CH_ELEMS) F32 elements over
/// [`CH_RANKS`](crate::striping::CH_RANKS) rank threads, swept over
/// channels ∈ {1, 2, 4, 8}. The row's baseline is the single-channel
/// (legacy engine) wall capped at `best × CH_SPEEDUP_CAP` and its
/// `coconet_s` is the best multi-channel wall, so the gated speedup is
/// the striped engine's win. Contract violations — no multi-channel
/// width strictly faster (enforced in release builds, where the
/// committed gate runs), a width off the analytic wire volume, a
/// bitwise divergence from one channel — are gate failures.
fn ablation_channels_experiment() -> (ExperimentResult, Vec<String>) {
    use crate::striping::{channel_ablation_bench, CH_ELEMS, CH_RANKS, CH_SPEEDUP_CAP};
    // Debug builds (the test suite) keep the single-iteration sweep;
    // release CI takes the fastest of three per width.
    let iters = if cfg!(debug_assertions) { 1 } else { 3 };
    let row = channel_ablation_bench(CH_ELEMS, CH_RANKS, iters);
    let (best_c, best_s) = row.best_multi();
    let gated_baseline = row.single_s().min(best_s * CH_SPEEDUP_CAP);
    let mut result = ExperimentResult::analytic("ablation_channels", gated_baseline, best_s);
    result.extra = vec![
        ("elems".into(), Json::Num(row.elems as f64)),
        ("ranks".into(), Json::Num(row.ranks as f64)),
        ("iters".into(), Json::Num(iters as f64)),
        ("best_channels".into(), Json::Num(best_c as f64)),
        (
            "analytic_bytes".into(),
            Json::Num(row.analytic_bytes as f64),
        ),
        (
            "bit_identical".into(),
            Json::Str(if row.bit_identical { "yes" } else { "no" }.into()),
        ),
        ("measured_speedup".into(), Json::Num(row.speedup())),
    ];
    for &(c, s) in &row.walls {
        result.extra.push((format!("channels_{c}_s"), Json::Num(s)));
    }
    for &(c, b) in &row.wire_bytes {
        result
            .extra
            .push((format!("channels_{c}_bytes"), Json::Num(b as f64)));
    }
    let failures = row
        .violations()
        .into_iter()
        // The strictly-faster wall comparison is a release-mode gate:
        // debug builds run the sweep at test size on unoptimized
        // loops, where scheduler noise can outweigh the ~25 % write
        // saving. The byte-exactness and bit-identity halves of the
        // contract gate in every build.
        .filter(|v| !(cfg!(debug_assertions) && v.starts_with("no multi-channel")))
        .map(|v| format!("ablation_channels: {v}"))
        .collect();
    (result, failures)
}

/// The steady-state rows: the costed barriered vs barrier-free
/// iterations/sec comparison at the acceptance geometry (2^24 gradient
/// elements over 8 ranks — deterministic cost-model output, so the CI
/// gate tracks the overlap win directly), plus the measured witnesses
/// row whose baseline/coconet pair is *bytes per rank* (measured
/// tagged traffic over the analytic volume, so its speedup is exactly
/// 1.0 for a healthy run). Witness violations — diverged parameters,
/// a last-layer gradient finishing before a first-layer one, a
/// priority class off its analytic volume — are gate failures, the
/// same treatment as a ledger or tuner inconsistency.
fn steady_experiments() -> (Vec<ExperimentResult>, Vec<String>) {
    use crate::steady::{
        steady_state_bench, steady_state_sim, STEADY_ELEMS, STEADY_LAYERS, STEADY_RANKS,
    };
    let sim = steady_state_sim();
    let mut stream =
        ExperimentResult::analytic("steady_state_stream", sim.barriered_s, sim.streamed_s);
    stream.extra = vec![
        ("unit".into(), Json::Str("seconds per iteration".into())),
        ("elems".into(), Json::Num(STEADY_ELEMS as f64)),
        ("ranks".into(), Json::Num(STEADY_RANKS as f64)),
        ("layers".into(), Json::Num(STEADY_LAYERS as f64)),
        (
            "barriered_iters_per_sec".into(),
            Json::Num(sim.barriered_iters_per_sec()),
        ),
        (
            "streamed_iters_per_sec".into(),
            Json::Num(sim.streamed_iters_per_sec()),
        ),
    ];
    // Debug builds (the test suite) keep the single run; release CI
    // takes the fastest of two.
    let repeats = if cfg!(debug_assertions) { 1 } else { 2 };
    let row = steady_state_bench(repeats);
    let mut ledger = ExperimentResult::analytic(
        "ledger_priority_stream",
        row.class_bytes_total() as f64,
        (row.class_analytic_bytes() * row.layers as u64) as f64,
    );
    ledger.extra = vec![
        ("unit".into(), Json::Str("bytes per rank".into())),
        ("elems".into(), Json::Num(row.elems as f64)),
        ("ranks".into(), Json::Num(row.ranks as f64)),
        ("layers".into(), Json::Num(row.layers as f64)),
        ("iters".into(), Json::Num(row.iters as f64)),
        (
            "class_bytes_sent".into(),
            Json::Arr(
                row.ledger
                    .class_bytes_sent
                    .iter()
                    .map(|&b| Json::Num(b as f64))
                    .collect(),
            ),
        ),
        (
            "class_analytic_bytes".into(),
            Json::Num(row.class_analytic_bytes() as f64),
        ),
        (
            "params_match".into(),
            Json::Str(if row.params_match { "yes" } else { "no" }.into()),
        ),
        ("measured_barriered_s".into(), Json::Num(row.barriered_s)),
        ("measured_streamed_s".into(), Json::Num(row.streamed_s)),
    ];
    let failures = row
        .violations()
        .into_iter()
        .map(|v| format!("ledger_priority_stream: {v}"))
        .collect();
    (vec![stream, ledger], failures)
}

/// The traced overlap row: the steady-state loop run under both
/// schedules *with span recording on*, distilled by the trace crate's
/// overlap profiler and drift aligner. The row's baseline/coconet pair
/// is the priority schedule's measured hidden-communication fraction
/// on both sides (so its speedup is pinned at exactly 1.0 for a
/// healthy run — the fraction itself is machine-dependent, so the
/// regression gate must not diff it); the real invariants gate as
/// failures: the priority schedule must hide strictly more collective
/// in-flight time than the barriered one, every simulated plan step
/// (`bwd{l}` / `grad{l}`) must align with a traced measurement, and
/// both traces must be well formed (nested spans, monotone per-thread
/// records, every enqueue completed). The per-step drift and both
/// hidden fractions ride along in the extras, and the priority run's
/// Chrome trace JSON is stashed for `report --trace-out`.
fn overlap_trace_experiment() -> (ExperimentResult, Vec<String>) {
    use crate::tracebench::overlap_trace_bench;
    let row = overlap_trace_bench();
    let hidden = row.priority.hidden_fraction;
    let mut result = ExperimentResult::analytic("overlap_trace", hidden, hidden);
    result.extra = vec![
        ("unit".into(), Json::Str("hidden fraction".into())),
        ("elems".into(), Json::Num(row.elems as f64)),
        ("ranks".into(), Json::Num(row.ranks as f64)),
        ("layers".into(), Json::Num(row.layers as f64)),
        ("iters".into(), Json::Num(row.iters as f64)),
        (
            "hidden_frac_barriered".into(),
            Json::Num(row.barriered.hidden_fraction),
        ),
        ("hidden_frac_priority".into(), Json::Num(hidden)),
        (
            "comm_busy_s_barriered".into(),
            Json::Num(row.barriered.comm_busy_s),
        ),
        (
            "comm_busy_s_priority".into(),
            Json::Num(row.priority.comm_busy_s),
        ),
        ("hidden_s_priority".into(), Json::Num(row.priority.hidden_s)),
        (
            "events_barriered".into(),
            Json::Num(row.barriered.events as f64),
        ),
        (
            "events_priority".into(),
            Json::Num(row.priority.events as f64),
        ),
        (
            "dropped_events".into(),
            Json::Num((row.barriered.dropped + row.priority.dropped) as f64),
        ),
        (
            "drift_mean_abs_rel_err".into(),
            Json::Num(row.drift.mean_abs_rel_err()),
        ),
        (
            "drift_max_abs_rel_err".into(),
            Json::Num(row.drift.max_abs_rel_err()),
        ),
        ("drift_scale".into(), Json::Num(row.drift.scale)),
        (
            "drift_steps".into(),
            Json::Arr(
                row.drift
                    .steps
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(s.label.clone())),
                            ("predicted_s".into(), Json::Num(s.predicted_s)),
                            ("measured_s".into(), Json::Num(s.measured_s)),
                            ("rel_err".into(), Json::Num(s.rel_err)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    let failures = row
        .violations()
        .into_iter()
        .map(|v| format!("overlap_trace: {v}"))
        .collect();
    (result, failures)
}

/// The measured plan-cache row: one cold [`Autotuner::tune_cached`]
/// sweep of the Adam workload against the fastest of
/// [`PLAN_CACHE_WARM_ITERS`](crate::plancache::PLAN_CACHE_WARM_ITERS)
/// warm cache hits. The row's baseline is the cold wall capped at
/// `warm × PLAN_CACHE_MIN_SPEEDUP` — the same treatment as the
/// zero-copy microbenchmark — so a healthy run pins the gated speedup
/// at exactly the 50x floor while the raw ratio (typically far larger)
/// rides along in `measured_speedup`. Cache-contract violations — a
/// warm winner that isn't bit-identical to the cold one, a hit that
/// still costed configurations, a sub-50x lookup — are gate failures.
fn plan_cache_experiment() -> (ExperimentResult, Vec<String>) {
    use crate::plancache::{plan_cache_bench, PLAN_CACHE_MIN_SPEEDUP, PLAN_CACHE_WARM_ITERS};
    let row = plan_cache_bench("adam", TUNE_WORKERS);
    let gated_baseline = row.cold_s.min(row.warm_s * PLAN_CACHE_MIN_SPEEDUP);
    let mut result = ExperimentResult::analytic("plan_cache", gated_baseline, row.warm_s);
    result.extra = vec![
        ("cold_s".into(), Json::Num(row.cold_s)),
        ("measured_speedup".into(), Json::Num(row.measured_speedup())),
        ("warm_iters".into(), Json::Num(PLAN_CACHE_WARM_ITERS as f64)),
        (
            "cold_configs_evaluated".into(),
            Json::Num(row.cold_configs_evaluated as f64),
        ),
        (
            "warm_configs_evaluated".into(),
            Json::Num(row.warm_configs_evaluated as f64),
        ),
        ("cache_hits".into(), Json::Num(row.stats.hits as f64)),
        ("cache_misses".into(), Json::Num(row.stats.misses as f64)),
        (
            "cache_evictions".into(),
            Json::Num(row.stats.evictions as f64),
        ),
        ("winner".into(), Json::Str(row.warm_best.label())),
        (
            "bit_identical".into(),
            Json::Str(if row.bit_identical() { "yes" } else { "no" }.into()),
        ),
    ];
    let failures = row
        .violations()
        .into_iter()
        .map(|v| format!("plan_cache: {v}"))
        .collect();
    (result, failures)
}

/// The multi-tenant contention row: the tuned Adam winner lowered at
/// [`MT_JOBS`](crate::multitenant::MT_JOBS) scaled problem sizes,
/// replayed through the shared-fabric simulator. The row's baseline is
/// the serial (no-consolidation) wall and its `coconet_s` is the
/// contention-aware makespan, so the gated speedup is the
/// consolidation win CI tracks. The scheduling-theory invariants —
/// SRPT strictly beating FIFO's mean completion, work-conserving
/// makespans agreeing within slack, sharing beating serial — are gate
/// failures.
fn multitenant_experiment() -> (ExperimentResult, Vec<String>) {
    use crate::multitenant::{multitenant_bench, MT_JOBS};
    let row = multitenant_bench("adam", TUNE_WORKERS);
    let mut result = ExperimentResult::analytic(
        "multitenant_throughput",
        row.serial_s(),
        row.aware_makespan_s(),
    );
    result.extra = vec![
        ("jobs".into(), Json::Num(MT_JOBS as f64)),
        ("winner".into(), Json::Str(row.winner.clone())),
        (
            "fifo_makespan_s".into(),
            Json::Num(row.report.fifo.makespan_s),
        ),
        (
            "aware_makespan_s".into(),
            Json::Num(row.report.aware.makespan_s),
        ),
        (
            "fifo_mean_completion_s".into(),
            Json::Num(row.report.fifo.mean_completion_s),
        ),
        (
            "aware_mean_completion_s".into(),
            Json::Num(row.report.aware.mean_completion_s),
        ),
        (
            "solo_s".into(),
            Json::Arr(row.solo_s.iter().map(|&(_, s)| Json::Num(s)).collect()),
        ),
    ];
    let failures = row
        .violations()
        .into_iter()
        .map(|v| format!("multitenant_throughput: {v}"))
        .collect();
    (result, failures)
}

/// The wire-format ablation at one message size: AllReduce of
/// `2^log2_elems` FP16 gradients on 256 GPUs, each format at its own
/// best `algorithm × protocol`. The row's baseline is the dense wire
/// and its `coconet_s` is the best format — the small row shows dense
/// winning the latency-bound regime (speedup 1.0), the large row shows
/// the sparse wire's win, and the 100 ‰ point pins the sparse↔dense
/// switchover (its time equals dense exactly).
fn compression_ablation(name: &'static str, log2_elems: u32) -> ExperimentResult {
    use crate::compression::{ablation_formats, format_winner};
    let rows = ablation_formats(log2_elems);
    let dense = rows.iter().find(|r| r.0 == "dense").expect("dense row").1;
    let best = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let winner = format_winner(&rows);
    let mut row = ExperimentResult::analytic(name, dense, best);
    row.extra = rows
        .iter()
        .map(|&(label, t)| (format!("{label}_s"), Json::Num(t)))
        .collect();
    row.extra.push(("winner".into(), Json::Str(winner.into())));
    row.extra
        .push(("log2_elems".into(), Json::Num(f64::from(log2_elems))));
    row
}

/// The measured compressed-collective row: real ring AllReduces of
/// [`LEDGER_ELEMS`](crate::compression::LEDGER_ELEMS) F32 elements
/// over 8 rank threads under the dense, FP16, and 10 ‰ top-k wires.
/// The row's baseline/coconet pair is *bytes per rank* (dense over
/// top-k), so its speedup is the ledger-verified volume reduction the
/// regression gate tracks (~29x, deterministic). Analytic-volume
/// deviations — dense off the ring formula, FP16 not exactly half,
/// top-k off the sparse formula or ≥ 5 % of dense — are gate failures.
fn compression_ledger() -> (ExperimentResult, Vec<String>) {
    use crate::compression::{compression_ledger_bench, LEDGER_ELEMS, LEDGER_RANKS};
    let row = compression_ledger_bench(LEDGER_ELEMS, LEDGER_RANKS);
    let mut result = ExperimentResult::analytic(
        "ledger_compression",
        row.dense_bytes as f64,
        row.topk_bytes as f64,
    );
    result.extra = vec![
        ("unit".into(), Json::Str("bytes per rank".into())),
        ("elems".into(), Json::Num(row.elems as f64)),
        ("ranks".into(), Json::Num(row.ranks as f64)),
        ("dense_bytes".into(), Json::Num(row.dense_bytes as f64)),
        ("fp16_bytes".into(), Json::Num(row.fp16_bytes as f64)),
        ("topk10_bytes".into(), Json::Num(row.topk_bytes as f64)),
        (
            "topk_fraction_of_dense".into(),
            Json::Num(row.topk_bytes as f64 / row.dense_bytes as f64),
        ),
    ];
    let failures = row
        .violations()
        .into_iter()
        .map(|v| format!("ledger_compression: {v}"))
        .collect();
    (result, failures)
}

/// Table 2 (Adam): scattered-tensor fused update vs contiguous.
/// "Baseline" here is the scattered layout — the row tracks how small
/// CoCoNet keeps the scattered-tensor overhead, so its speedup sits
/// just below 1.
fn tab2() -> ExperimentResult {
    let (scattered, contiguous) = experiments::table2(Optimizer::Adam);
    ExperimentResult::analytic("tab2_scattered_params", contiguous, scattered)
}

/// Table 4's first row (BERT 336M, Adam): the strongest non-CoCoNet
/// baseline vs CoCoNet's iteration time.
fn tab4() -> ExperimentResult {
    let sim = Simulator::new(MachineSpec::paper_testbed(), experiments::DP_RANKS, 1);
    let memory = MemoryModel::default();
    let cfg = ModelConfig::bert_336m();
    let est = |s: Strategy| {
        coconet_models::training::estimate_iteration(
            &sim,
            &memory,
            &cfg,
            Optimizer::Adam,
            s,
            experiments::DP_RANKS,
            8192,
        )
    };
    let coconet = est(Strategy::ALL[3]).expect("CoCoNet always trains");
    let best_baseline = Strategy::ALL[..3]
        .iter()
        .filter_map(|&s| est(s))
        .map(|e| e.total())
        .fold(f64::INFINITY, f64::min);
    ExperimentResult::analytic("tab4_bert_training", best_baseline, coconet.total())
}

/// One workload's pair of searches (invariant violations, if any, are
/// reported alongside by [`tab3_run`]).
struct Tab3Run {
    name: &'static str,
    baseline_s: f64,
    pruned: coconet_core::TuneReport,
    pruned_best: coconet_core::Candidate,
    exhaustive: coconet_core::TuneReport,
}

/// The Table 3 autotuner rows: each workload runs the pruned tuner and
/// the exhaustive reference on the same worker count
/// ([`TUNE_WORKERS`]), proving pruning changes nothing but the work
/// done — identical winner, strictly fewer configurations costed, and
/// (aggregated across the workloads, wall-clock being the one noisy
/// measurement) strictly less tuning time. Invariant violations are
/// returned alongside the rows rather than in place of them, so the
/// trajectory file is always written for diagnosis.
fn tab3_experiments(workloads: &[&str]) -> Result<(Vec<ExperimentResult>, Vec<String>), String> {
    let run_all = || -> Result<(Vec<Tab3Run>, Vec<String>), String> {
        let mut runs = Vec::new();
        let mut failures = Vec::new();
        for w in workloads {
            let (run, mut violations) = tab3_run(w)?;
            runs.push(run);
            failures.append(&mut violations);
        }
        Ok((runs, failures))
    };
    let wall = |runs: &[Tab3Run], f: fn(&Tab3Run) -> std::time::Duration| -> std::time::Duration {
        runs.iter().map(f).sum()
    };
    let (mut runs, mut gate_failures) = run_all()?;
    // Up to two retries of the wall-clock comparison; each keeps the
    // fastest timing seen per workload per mode (min-of-attempts
    // approximates the true cost — the counts and winner are
    // deterministic, so mixing attempts is sound). This keeps the gate
    // meaningful without letting one noisy scheduler hiccup on a
    // shared runner fail the job. Deterministic violations (winner
    // mismatch, no configuration savings) are not retried — they can
    // only repeat.
    if gate_failures.is_empty() {
        for _ in 0..2 {
            if wall(&runs, |r| r.pruned.elapsed) < wall(&runs, |r| r.exhaustive.elapsed) {
                break;
            }
            let (again, fresh_failures) = run_all()?;
            gate_failures.extend(fresh_failures);
            for (best, fresh) in runs.iter_mut().zip(again) {
                if fresh.pruned.elapsed < best.pruned.elapsed {
                    best.pruned = fresh.pruned;
                    best.pruned_best = fresh.pruned_best;
                }
                if fresh.exhaustive.elapsed < best.exhaustive.elapsed {
                    best.exhaustive = fresh.exhaustive;
                }
            }
        }
        let pruned_wall = wall(&runs, |r| r.pruned.elapsed);
        let exhaustive_wall = wall(&runs, |r| r.exhaustive.elapsed);
        if pruned_wall >= exhaustive_wall {
            gate_failures.push(format!(
                "pruned search was not faster in aggregate over {workloads:?}: \
                 {pruned_wall:?} vs exhaustive {exhaustive_wall:?}"
            ));
        }
    }
    let rows = runs
        .into_iter()
        .map(|run| ExperimentResult {
            name: run.name,
            baseline_s: run.baseline_s,
            coconet_s: run.pruned_best.time,
            schedules_explored: run.pruned.schedules_explored,
            configs_evaluated: run.pruned.configs_evaluated,
            tune_wall_ms: run.pruned.elapsed.as_secs_f64() * 1e3,
            extra: vec![
                ("winner".into(), Json::Str(run.pruned_best.label())),
                (
                    "configs_pruned".into(),
                    Json::Num(run.pruned.configs_pruned as f64),
                ),
                (
                    "exhaustive_configs_evaluated".into(),
                    Json::Num(run.exhaustive.configs_evaluated as f64),
                ),
                (
                    "exhaustive_tune_wall_ms".into(),
                    Json::Num(run.exhaustive.elapsed.as_secs_f64() * 1e3),
                ),
            ],
        })
        .collect();
    Ok((rows, gate_failures))
}

/// Runs one workload in both modes and returns the run plus any
/// violations of the deterministic invariants (winner identity,
/// strict configuration savings). Each mode runs three times keeping
/// the fastest wall-clock — the standard noise-robust benchmark
/// statistic; the winner and the configuration counts are identical
/// across repeats by construction.
fn tab3_run(workload: &str) -> Result<(Tab3Run, Vec<String>), String> {
    let (program, binding, sim) = experiments::autotune_setup(workload);

    let run = |tuner: &Autotuner| {
        let mut fastest: Option<coconet_core::TuneReport> = None;
        for _ in 0..3 {
            let report = tuner
                .tune(&program, &binding, &sim)
                .map_err(|e| format!("{workload}: tuning failed: {e}"))?;
            if fastest.as_ref().is_none_or(|f| report.elapsed < f.elapsed) {
                fastest = Some(report);
            }
        }
        let report = fastest.expect("three runs happened");
        let best = report
            .best()
            .map_err(|e| format!("{workload}: {e}"))?
            .clone();
        Ok::<_, String>((report, best))
    };
    let (pruned, pruned_best) = run(&Autotuner::default().with_workers(TUNE_WORKERS))?;
    let (exhaustive, exhaustive_best) =
        run(&Autotuner::default().exhaustive().with_workers(TUNE_WORKERS))?;

    let mut violations = Vec::new();
    // The winner must be identical — pruning is a pure work-saver.
    if pruned_best.schedule != exhaustive_best.schedule
        || pruned_best.config != exhaustive_best.config
    {
        violations.push(format!(
            "{workload}: pruned winner {:?} @ {} != exhaustive winner {:?} @ {}",
            pruned_best.schedule,
            pruned_best.config,
            exhaustive_best.schedule,
            exhaustive_best.config,
        ));
    }
    if pruned.configs_evaluated >= exhaustive.configs_evaluated {
        violations.push(format!(
            "{workload}: pruned search costed {} configs, exhaustive {} — pruning saved nothing",
            pruned.configs_evaluated, exhaustive.configs_evaluated,
        ));
    }

    let baseline = exhaustive
        .candidates
        .iter()
        .find(|c| c.schedule.is_empty())
        .ok_or_else(|| format!("{workload}: exhaustive search lost the baseline schedule"))?
        .time;

    let name: &'static str = match workload {
        "adam" => "tab3_autotuner_adam",
        "lamb" => "tab3_autotuner_lamb",
        "model-parallel" => "tab3_autotuner_model_parallel",
        "pipeline" => "tab3_autotuner_pipeline",
        other => return Err(format!("unknown workload {other}")),
    };
    Ok((
        Tab3Run {
            name,
            baseline_s: baseline,
            pruned,
            pruned_best,
            exhaustive,
        },
        violations,
    ))
}

/// Renders the results as the `BENCH_coconet.json` document.
pub fn to_json(results: &[ExperimentResult]) -> Json {
    Json::Obj(
        results
            .iter()
            .map(|r| {
                let mut row = vec![
                    ("baseline_s".to_string(), Json::Num(r.baseline_s)),
                    ("coconet_s".to_string(), Json::Num(r.coconet_s)),
                    ("speedup".to_string(), Json::Num(r.speedup())),
                    (
                        "schedules_explored".to_string(),
                        Json::Num(r.schedules_explored as f64),
                    ),
                    (
                        "configs_evaluated".to_string(),
                        Json::Num(r.configs_evaluated as f64),
                    ),
                    ("tune_wall_ms".to_string(), Json::Num(r.tune_wall_ms)),
                ];
                row.extend(r.extra.iter().cloned());
                (r.name.to_string(), Json::Obj(row))
            })
            .collect(),
    )
}

/// Compares a fresh trajectory against the committed baseline: every
/// experiment present in the baseline must still exist and keep its
/// speedup within `tolerance` (e.g. `0.10` = may lose up to 10 %).
/// Wall-clock fields are intentionally not compared — only the
/// schedule-quality ratios are stable across machines.
///
/// # Errors
///
/// Returns the list of regressions, one message per failing
/// experiment, or a message describing a malformed document.
pub fn regression_check(current: &Json, baseline: &Json, tolerance: f64) -> Result<(), String> {
    let baseline_rows = baseline
        .entries()
        .ok_or("baseline document is not a JSON object")?;
    let mut failures = Vec::new();
    for (name, row) in baseline_rows {
        let want = row
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline `{name}` has no numeric speedup"))?;
        let Some(got) = current.get(name).and_then(|r| r.get("speedup")) else {
            failures.push(format!(
                "experiment `{name}` disappeared from the trajectory"
            ));
            continue;
        };
        let got = got
            .as_f64()
            .ok_or_else(|| format!("current `{name}` has no numeric speedup"))?;
        if got < want * (1.0 - tolerance) {
            failures.push(format!(
                "`{name}` speedup regressed: {got:.3}x vs baseline {want:.3}x \
                 (tolerance {:.0} %)",
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trajectory_covers_the_headline_experiments() {
        let trajectory = collect(true).expect("trajectory collects");
        assert!(
            trajectory.gate_failures.is_empty(),
            "tuner gate failed: {:?}",
            trajectory.gate_failures
        );
        let results = trajectory.results;
        assert!(results.len() >= 6, "only {} experiments", results.len());
        let doc = to_json(&results);
        let text = doc.render_pretty();
        let back = Json::parse(&text).expect("self-parse");
        assert_eq!(doc, back);
        for r in &results {
            let row = back.get(r.name).expect("row present");
            for field in [
                "baseline_s",
                "coconet_s",
                "speedup",
                "schedules_explored",
                "configs_evaluated",
                "tune_wall_ms",
            ] {
                assert!(
                    row.get(field).and_then(Json::as_f64).is_some(),
                    "{}.{field} missing",
                    r.name
                );
            }
            assert!(r.baseline_s > 0.0 && r.coconet_s > 0.0);
        }
        // The algorithm-ablation rows exhibit the size crossover: tree
        // wins the small message, ring stays optimal at the large one.
        let small = back.get("ablation_algo_small").expect("small algo row");
        assert_eq!(
            small.get("winner").and_then(Json::as_str),
            Some("tree"),
            "small-message winner"
        );
        assert!(small.get("speedup").and_then(Json::as_f64).unwrap() > 1.0);
        let large = back.get("ablation_algo_large").expect("large algo row");
        assert_eq!(
            large.get("winner").and_then(Json::as_str),
            Some("ring"),
            "large-message winner"
        );
        assert_eq!(large.get("speedup").and_then(Json::as_f64), Some(1.0));
        // Every size row carries the fourth (switch) column.
        assert!(large.get("switch_s").and_then(Json::as_f64).unwrap() > 0.0);
        // The worker-count ablation exhibits the in-network crossover:
        // the ring wins the 2-worker group, the switch wins at 32.
        let sw = back.get("ablation_switch_workers").expect("switch row");
        assert_eq!(sw.get("winner_2").and_then(Json::as_str), Some("ring"));
        assert_eq!(sw.get("winner_32").and_then(Json::as_str), Some("switch"));
        assert!(
            sw.get("speedup").and_then(Json::as_f64).unwrap() > 1.0,
            "switch must beat every host-side algorithm at 32 workers"
        );
        // The measured switch-ledger row: exactly 2·n quantization
        // words per worker, identical at both group sizes.
        let sledger = back.get("ledger_switch").expect("switch ledger row");
        assert_eq!(sledger.get("speedup").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            sledger.get("small_group_bytes").and_then(Json::as_f64),
            sledger.get("analytic_bytes").and_then(Json::as_f64),
        );
        assert_eq!(
            sledger.get("bytes_sent").and_then(Json::as_f64).unwrap() * 2.0,
            sledger
                .get("analytic_bytes")
                .and_then(Json::as_f64)
                .unwrap(),
        );
        // The measured zero-copy rows: the substrate beats the
        // deep-copy reconstruction, and the ledger matches the
        // analytic wire volume exactly (speedup is bytes/bytes = 1).
        let micro = back.get("microbench_zero_copy").expect("microbench row");
        assert!(
            micro.get("speedup").and_then(Json::as_f64).unwrap() > 1.0,
            "zero-copy runtime must beat the deep-copy baseline"
        );
        assert!(
            micro
                .get("measured_speedup")
                .and_then(Json::as_f64)
                .unwrap()
                >= micro.get("speedup").and_then(Json::as_f64).unwrap()
        );
        assert_eq!(
            micro.get("elems").and_then(Json::as_f64),
            Some(crate::zerocopy::ZC_ELEMS as f64)
        );
        let ledger = back.get("ledger_allreduce").expect("ledger row");
        assert_eq!(ledger.get("speedup").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            ledger.get("bytes_sent").and_then(Json::as_f64),
            ledger.get("analytic_bytes").and_then(Json::as_f64),
        );
        assert_eq!(
            ledger.get("cow_bytes").and_then(Json::as_f64),
            ledger.get("expected_cow_bytes").and_then(Json::as_f64),
        );
        // The measured kernel-engine row: the monomorphized loops beat
        // the per-element dispatch baseline, and the GB/s columns are
        // present and ordered the same way as the walls.
        let kernel = back.get("kernel_throughput").expect("kernel row");
        assert!(
            kernel.get("speedup").and_then(Json::as_f64).unwrap() > 1.0,
            "kernel engine must beat the dispatch baseline"
        );
        assert!(
            kernel
                .get("measured_speedup")
                .and_then(Json::as_f64)
                .unwrap()
                >= kernel.get("speedup").and_then(Json::as_f64).unwrap()
        );
        assert!(
            kernel.get("mono_gb_s").and_then(Json::as_f64).unwrap()
                > kernel.get("dispatch_gb_s").and_then(Json::as_f64).unwrap()
        );
        assert_eq!(
            kernel.get("elems").and_then(Json::as_f64),
            Some(crate::kernelbench::KB_ELEMS as f64)
        );
        // The channel-striping sweep: every width byte-exact against
        // the analytic ring volume and bit-identical to one channel.
        let ch = back.get("ablation_channels").expect("channels row");
        assert_eq!(ch.get("bit_identical").and_then(Json::as_str), Some("yes"));
        for width in crate::striping::CH_WIDTHS {
            assert_eq!(
                ch.get(&format!("channels_{width}_bytes"))
                    .and_then(Json::as_f64),
                ch.get("analytic_bytes").and_then(Json::as_f64),
                "width {width} wire volume"
            );
            assert!(
                ch.get(&format!("channels_{width}_s"))
                    .and_then(Json::as_f64)
                    .unwrap()
                    > 0.0
            );
        }
        assert!(ch.get("best_channels").and_then(Json::as_f64).unwrap() > 1.0);
        // The wire-compression ablation rows: dense wins the
        // latency-bound small regime, the sparse wire wins large.
        let small = back
            .get("compression_ablation_small")
            .expect("compression small row");
        assert_eq!(small.get("winner").and_then(Json::as_str), Some("dense"));
        assert_eq!(small.get("speedup").and_then(Json::as_f64), Some(1.0));
        let large = back
            .get("compression_ablation_large")
            .expect("compression large row");
        assert!(large
            .get("winner")
            .and_then(Json::as_str)
            .unwrap()
            .starts_with("topk"));
        assert!(large.get("speedup").and_then(Json::as_f64).unwrap() > 2.0);
        // 100 ‰ has switched over to the dense wire: identical time.
        assert_eq!(
            large.get("topk100_s").and_then(Json::as_f64),
            large.get("dense_s").and_then(Json::as_f64),
        );
        // The steady-state rows: the costed barrier-free schedule
        // beats the barriered loop (bounded by the 2x pipelining
        // ceiling), and the measured witnesses row moved exactly its
        // analytic volume on every priority class.
        let steady = back.get("steady_state_stream").expect("steady row");
        let speedup = steady.get("speedup").and_then(Json::as_f64).unwrap();
        assert!(
            speedup > 1.0 && speedup <= 2.0,
            "steady-state speedup {speedup}"
        );
        assert!(
            steady
                .get("streamed_iters_per_sec")
                .and_then(Json::as_f64)
                .unwrap()
                > steady
                    .get("barriered_iters_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap(),
            "barrier-free iterations/sec must beat barriered"
        );
        let pledger = back.get("ledger_priority_stream").expect("priority ledger");
        assert_eq!(pledger.get("speedup").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            pledger.get("params_match").and_then(Json::as_str),
            Some("yes")
        );
        // The traced overlap row: the priority schedule hides strictly
        // more communication than the barriered one, the drift report
        // aligned all sixteen plan steps, and the row's speedup is
        // pinned at 1.0 (the hidden fraction is machine-dependent and
        // must not be diffed by the regression gate).
        let ot = back.get("overlap_trace").expect("overlap trace row");
        assert_eq!(ot.get("speedup").and_then(Json::as_f64), Some(1.0));
        let hid_p = ot
            .get("hidden_frac_priority")
            .and_then(Json::as_f64)
            .unwrap();
        let hid_b = ot
            .get("hidden_frac_barriered")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(
            hid_p > hid_b,
            "priority must hide more comm than barriered: {hid_p} vs {hid_b}"
        );
        assert!(hid_p > 0.0);
        let drift_steps = ot.get("drift_steps").expect("drift steps");
        assert!(
            matches!(drift_steps, Json::Arr(steps) if steps.len() == 16),
            "all sixteen plan steps align"
        );
        assert!(
            ot.get("drift_mean_abs_rel_err")
                .and_then(Json::as_f64)
                .unwrap()
                >= 0.0
        );
        // The measured ledger-compression row: the gated speedup IS the
        // volume reduction, and FP16 is exactly half of dense.
        let comp = back.get("ledger_compression").expect("ledger row");
        assert!(comp.get("speedup").and_then(Json::as_f64).unwrap() > 25.0);
        assert_eq!(
            comp.get("fp16_bytes").and_then(Json::as_f64).unwrap() * 2.0,
            comp.get("dense_bytes").and_then(Json::as_f64).unwrap(),
        );
        // The plan-cache row: the gated speedup is pinned at the 50x
        // floor, the hit costed nothing, and the warm winner is
        // bit-identical to the cold one.
        let pc = back.get("plan_cache").expect("plan cache row");
        assert_eq!(
            pc.get("speedup").and_then(Json::as_f64),
            Some(crate::plancache::PLAN_CACHE_MIN_SPEEDUP)
        );
        assert!(
            pc.get("measured_speedup").and_then(Json::as_f64).unwrap()
                >= crate::plancache::PLAN_CACHE_MIN_SPEEDUP
        );
        assert_eq!(
            pc.get("warm_configs_evaluated").and_then(Json::as_f64),
            Some(0.0)
        );
        assert!(
            pc.get("cold_configs_evaluated")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        assert_eq!(pc.get("bit_identical").and_then(Json::as_str), Some("yes"));
        assert_eq!(pc.get("cache_misses").and_then(Json::as_f64), Some(1.0));
        // The multi-tenant row: consolidation beats serial, and SRPT
        // beats fair sharing on mean completion.
        let mt = back.get("multitenant_throughput").expect("multitenant row");
        assert!(mt.get("speedup").and_then(Json::as_f64).unwrap() > 1.0);
        assert_eq!(mt.get("jobs").and_then(Json::as_f64), Some(4.0));
        assert!(
            mt.get("aware_mean_completion_s")
                .and_then(Json::as_f64)
                .unwrap()
                < mt.get("fifo_mean_completion_s")
                    .and_then(Json::as_f64)
                    .unwrap()
        );
        // The tuner rows carry the pruned-vs-exhaustive evidence.
        let adam = back.get("tab3_autotuner_adam").expect("adam row");
        let costed = adam
            .get("configs_evaluated")
            .and_then(Json::as_f64)
            .unwrap();
        let exhaustive = adam
            .get("exhaustive_configs_evaluated")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(
            costed < exhaustive,
            "pruning saved nothing: {costed} vs {exhaustive}"
        );
    }

    #[test]
    fn regression_check_flags_drops_and_disappearances() {
        let baseline =
            Json::parse(r#"{"a": {"speedup": 2.0}, "b": {"speedup": 1.5}, "c": {"speedup": 1.0}}"#)
                .unwrap();
        let current = Json::parse(r#"{"a": {"speedup": 1.5}, "c": {"speedup": 0.95}}"#).unwrap();
        let err = regression_check(&current, &baseline, 0.10).unwrap_err();
        assert!(err.contains("`a` speedup regressed"), "{err}");
        assert!(err.contains("`b` disappeared"), "{err}");
        assert!(!err.contains("`c`"), "c is within tolerance: {err}");
        // Identical trajectories pass.
        regression_check(&baseline, &baseline, 0.10).unwrap();
    }
}
