//! The measured plan-cache experiment behind the `plan_cache`
//! trajectory row.
//!
//! A serving process re-tunes the same (program, geometry) on every
//! request; the [`PlanCache`] answers repeats from memory. This module
//! measures that directly: one cold [`Autotuner::tune_cached`] call on
//! an empty cache (the full sweep), then repeated warm calls on the
//! now-populated cache, keeping the fastest warm latency (min-of-N —
//! the standard noise-robust statistic; the *answer* is deterministic,
//! only the wall-clock wobbles). The gates are the cache's contract:
//!
//! * the warm hit must be at least [`PLAN_CACHE_MIN_SPEEDUP`]× faster
//!   than the cold sweep;
//! * the warm winner must be **bit-identical** to the cold winner
//!   (schedule, config, and the time's exact bits);
//! * a hit must report `configs_evaluated == 0` — nothing was costed.
//!
//! Like the zero-copy microbenchmark, the *gated* baseline is capped so
//! a healthy run pins the row's speedup at exactly
//! [`PLAN_CACHE_MIN_SPEEDUP`] (wall-clock ratios of a microsecond-scale
//! lookup vary by orders of magnitude across runners — a 2000× run
//! regressing to a still-healthy 500× must not trip the regression
//! gate); the raw ratio rides along in `measured_speedup`.

use coconet_core::{Autotuner, CacheStats, Candidate, PlanCache};

use crate::experiments;

/// The gate: a warm hit must beat the cold sweep by at least this
/// factor, and the row's gated speedup is pinned here when healthy.
pub const PLAN_CACHE_MIN_SPEEDUP: f64 = 50.0;

/// Warm lookups measured (fastest kept).
pub const PLAN_CACHE_WARM_ITERS: usize = if cfg!(debug_assertions) { 5 } else { 50 };

/// One measured cold-vs-warm cache comparison.
#[derive(Clone, Debug)]
pub struct PlanCacheRow {
    /// Workload key (an [`experiments::autotune_setup`] name).
    pub workload: &'static str,
    /// Cold tuning wall seconds (cache miss: the full sweep ran).
    pub cold_s: f64,
    /// Fastest warm lookup wall seconds over
    /// [`PLAN_CACHE_WARM_ITERS`] hits.
    pub warm_s: f64,
    /// The cold winner.
    pub cold_best: Candidate,
    /// The warm winner (must be bit-identical to the cold one).
    pub warm_best: Candidate,
    /// Configurations the warm call costed (must be 0).
    pub warm_configs_evaluated: usize,
    /// Schedules the warm call explored (must be 0).
    pub warm_schedules_explored: usize,
    /// Configurations the cold call costed (> 0: the sweep ran).
    pub cold_configs_evaluated: usize,
    /// The cache's counters after the final warm call.
    pub stats: CacheStats,
}

impl PlanCacheRow {
    /// The raw cold/warm wall ratio.
    pub fn measured_speedup(&self) -> f64 {
        self.cold_s / self.warm_s
    }

    /// Whether the warm winner is bit-identical to the cold one.
    pub fn bit_identical(&self) -> bool {
        self.warm_best.schedule == self.cold_best.schedule
            && self.warm_best.config == self.cold_best.config
            && self.warm_best.time.to_bits() == self.cold_best.time.to_bits()
    }

    /// Violations of the cache contract (empty when healthy).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.bit_identical() {
            v.push(format!(
                "warm winner differs from cold winner: {:?} @ {} ({}) vs {:?} @ {} ({})",
                self.warm_best.schedule,
                self.warm_best.config,
                self.warm_best.time,
                self.cold_best.schedule,
                self.cold_best.config,
                self.cold_best.time,
            ));
        }
        if self.warm_configs_evaluated != 0 || self.warm_schedules_explored != 0 {
            v.push(format!(
                "a cache hit still swept: {} configs costed, {} schedules explored — both must be 0",
                self.warm_configs_evaluated, self.warm_schedules_explored,
            ));
        }
        if self.cold_configs_evaluated == 0 {
            v.push("cold tuning costed 0 configs — the sweep never ran".into());
        }
        if self.measured_speedup() < PLAN_CACHE_MIN_SPEEDUP {
            v.push(format!(
                "warm hit only {:.1}x faster than the cold sweep \
                 ({:.3e}s vs {:.3e}s) — the gate is {}x",
                self.measured_speedup(),
                self.warm_s,
                self.cold_s,
                PLAN_CACHE_MIN_SPEEDUP,
            ));
        }
        if self.stats.hits != PLAN_CACHE_WARM_ITERS || self.stats.misses != 1 {
            v.push(format!(
                "cache counters off: {} hits / {} misses, expected {} / 1",
                self.stats.hits, self.stats.misses, PLAN_CACHE_WARM_ITERS,
            ));
        }
        v
    }
}

/// Runs the cold-then-warm measurement on `workload` with the given
/// tuner parallelism.
pub fn plan_cache_bench(workload: &'static str, workers: usize) -> PlanCacheRow {
    let (program, binding, sim) = experiments::autotune_setup(workload);
    let tuner = Autotuner::default().with_workers(workers);
    let mut cache = PlanCache::new(8);

    let cold = tuner
        .tune_cached(&program, &binding, &sim, &mut cache)
        .expect("workload tunes");
    let cold_best = cold.best().expect("cold search found a winner").clone();

    let mut warm_s = f64::INFINITY;
    let mut warm = None;
    for _ in 0..PLAN_CACHE_WARM_ITERS {
        let report = tuner
            .tune_cached(&program, &binding, &sim, &mut cache)
            .expect("workload tunes");
        warm_s = warm_s.min(report.elapsed.as_secs_f64());
        warm = Some(report);
    }
    let warm = warm.expect("at least one warm iteration");
    let warm_best = warm.best().expect("warm hit returns the winner").clone();

    PlanCacheRow {
        workload,
        cold_s: cold.elapsed.as_secs_f64(),
        warm_s,
        cold_best,
        warm_best,
        warm_configs_evaluated: warm.configs_evaluated,
        warm_schedules_explored: warm.schedules_explored,
        cold_configs_evaluated: cold.configs_evaluated,
        stats: warm.cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The debug-build run already satisfies every gate: the hit is
    /// bit-identical, costs nothing, and clears the 50x floor (a hash
    /// lookup vs a several-ms sweep has orders of magnitude of slack).
    #[test]
    fn plan_cache_bench_is_healthy() {
        let row = plan_cache_bench("adam", 1);
        assert_eq!(row.violations(), Vec::<String>::new());
        assert!(row.bit_identical());
        assert!(row.measured_speedup() >= PLAN_CACHE_MIN_SPEEDUP);
        assert_eq!(row.warm_configs_evaluated, 0);
        assert!(row.cold_configs_evaluated > 0);
        assert!(row.stats.hit_age.is_some(), "hit reports the entry age");
    }
}
