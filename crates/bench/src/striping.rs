//! Measured multi-channel striping rows: real ring AllReduces swept
//! over the channel count.
//!
//! `channels = 1` takes the legacy copy-on-write engine; every wider
//! width takes the striped engine, whose fused out-of-place folds and
//! preallocated gather buffer write fewer bytes per element. The
//! `ablation_channels` trajectory row gates three properties at the
//! acceptance geometry: the best multi-channel width strictly beats a
//! single channel, the per-rank wire volume is byte-exact against the
//! analytic ring formula at *every* width, and every width's result is
//! bit-identical to the single-channel run.

use std::time::{Duration, Instant};

use coconet_compress::WireFormat;
use coconet_runtime::{ring_all_reduce_wire_bytes, ring_all_reduce_wire_striped, run_ranks, Group};
use coconet_tensor::{DType, ReduceOp, Tensor};

/// Elements of the swept AllReduce: 2^24 — the acceptance size — in
/// release builds, which produce every committed `BENCH_coconet.json`.
/// Debug builds (the unit-test suite) shrink to 2^18 so the sweep
/// stays a test, not a benchmark.
pub const CH_ELEMS: usize = if cfg!(debug_assertions) {
    1 << 18
} else {
    1 << 24
};

/// Rank threads of the swept AllReduce.
pub const CH_RANKS: usize = 8;

/// The channel widths the ablation sweeps.
pub const CH_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Cap on the gated speedup, mirroring
/// [`GATED_SPEEDUP_CAP`](crate::zerocopy::GATED_SPEEDUP_CAP) at a
/// scale fit to this row: the striped engine's win is a memory-traffic
/// ratio (~1.3x of writes saved), so the measured wall ratio is both
/// smaller and noisier than the zero-copy row's. Capping the recorded
/// speedup at 1.1x keeps the committed baseline machine-independent —
/// every healthy release run measures above it — while any real
/// striping regression collapses the ratio below 1 and fails both the
/// gate and the strictly-faster check.
pub const CH_SPEEDUP_CAP: f64 = 1.1;

/// One channel-sweep measurement: per-width walls and ledgers, plus
/// the bit-identity verdict against the single-channel run.
#[derive(Clone, Debug)]
pub struct ChannelsRow {
    /// Elements reduced.
    pub elems: usize,
    /// Ranks participating.
    pub ranks: usize,
    /// `(channels, fastest wall seconds)` per swept width, in
    /// [`CH_WIDTHS`] order. Per-run wall = slowest rank.
    pub walls: Vec<(usize, f64)>,
    /// `(channels, rank 0 wire bytes sent)` per swept width.
    pub wire_bytes: Vec<(usize, u64)>,
    /// The analytic per-rank ring volume every width must match.
    pub analytic_bytes: u64,
    /// Whether every width's rank-0 output was bit-identical to the
    /// single-channel run.
    pub bit_identical: bool,
}

impl ChannelsRow {
    /// The single-channel (legacy engine) wall.
    pub fn single_s(&self) -> f64 {
        self.walls
            .iter()
            .find(|&&(c, _)| c == 1)
            .expect("width 1 is swept")
            .1
    }

    /// The best multi-channel width and its wall.
    pub fn best_multi(&self) -> (usize, f64) {
        self.walls
            .iter()
            .filter(|&&(c, _)| c > 1)
            .fold(
                (0, f64::INFINITY),
                |best, &(c, s)| {
                    if s < best.1 {
                        (c, s)
                    } else {
                        best
                    }
                },
            )
    }

    /// Single-channel over best-multi-channel speedup.
    pub fn speedup(&self) -> f64 {
        self.single_s() / self.best_multi().1
    }

    /// Violations of the striping contract (empty when multi-channel
    /// wins, the wire is byte-exact at every width, and every width is
    /// bit-identical to one channel).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let (best_c, best_s) = self.best_multi();
        if best_s >= self.single_s() {
            v.push(format!(
                "no multi-channel width beat 1 channel ({:.3e}s): best was \
                 {best_c} channels at {best_s:.3e}s",
                self.single_s()
            ));
        }
        for &(c, bytes) in &self.wire_bytes {
            if bytes != self.analytic_bytes {
                v.push(format!(
                    "{c}-channel AllReduce sent {bytes} bytes per rank, \
                     analytic volume is {}",
                    self.analytic_bytes
                ));
            }
        }
        if !self.bit_identical {
            v.push("a striped width diverged bitwise from the single-channel run".into());
        }
        v
    }
}

/// Runs the sweep: `iters` timed AllReduces per width, fastest kept,
/// per-run wall-clock = slowest rank; every run's rank-0 output is
/// bit-compared against the single-channel reference.
pub fn channel_ablation_bench(elems: usize, ranks: usize, iters: usize) -> ChannelsRow {
    let mut walls = Vec::new();
    let mut wire_bytes = Vec::new();
    let mut reference: Option<Vec<u32>> = None;
    let mut bit_identical = true;
    for &channels in &CH_WIDTHS {
        let mut wall = f64::INFINITY;
        let mut bytes = 0u64;
        for _ in 0..iters.max(1) {
            let (t, b, out_bits) = timed_run(elems, ranks, channels);
            if t < wall {
                wall = t;
                bytes = b;
            }
            match &reference {
                None => reference = Some(out_bits),
                Some(want) => bit_identical &= *want == out_bits,
            }
        }
        walls.push((channels, wall));
        wire_bytes.push((channels, bytes));
    }
    ChannelsRow {
        elems,
        ranks,
        walls,
        wire_bytes,
        analytic_bytes: ring_all_reduce_wire_bytes(elems, ranks, DType::F32),
        bit_identical,
    }
}

/// One timed striped AllReduce over fresh rank threads; returns the
/// slowest rank's wall-clock, rank 0's wire bytes, and rank 0's output
/// as raw bits.
fn timed_run(elems: usize, ranks: usize, channels: usize) -> (f64, u64, Vec<u32>) {
    let results = run_ranks(ranks, move |comm| {
        let group = Group {
            start: 0,
            size: ranks,
        };
        let rank = comm.rank() as f32;
        let input = Tensor::from_fn([elems], DType::F32, move |i| rank + (i % 97) as f32);
        comm.reset_ledger();
        let start = Instant::now();
        let out = ring_all_reduce_wire_striped(
            &comm,
            group,
            &input,
            ReduceOp::Sum,
            WireFormat::Dense,
            channels,
        );
        let elapsed = start.elapsed();
        // Spot-check the reduction so no width can cheat.
        let base: f32 = (0..ranks).map(|r| r as f32).sum();
        assert_eq!(out.get(1), base + ranks as f32);
        let bits = if comm.rank() == 0 {
            (0..elems).map(|i| out.get(i).to_bits()).collect()
        } else {
            Vec::new()
        };
        (elapsed, comm.ledger().bytes_sent, bits)
    });
    let wall = results
        .iter()
        .map(|(t, _, _)| *t)
        .max()
        .unwrap_or(Duration::ZERO);
    let (_, bytes, bits) = results.into_iter().next().expect("rank 0 ran");
    (wall.as_secs_f64(), bytes, bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-size sweep: every width bit-identical and byte-exact.
    /// The strictly-faster wall gate is meaningful only at the
    /// acceptance size under `--release` (the trajectory row), so this
    /// test checks the correctness half of the contract.
    #[test]
    fn sweep_is_bit_identical_and_byte_exact() {
        let row = channel_ablation_bench(1 << 12, 4, 1);
        assert!(row.bit_identical);
        for &(c, bytes) in &row.wire_bytes {
            assert_eq!(bytes, row.analytic_bytes, "width {c}");
        }
        assert!(row.single_s() > 0.0 && row.best_multi().1 > 0.0);
    }
}
