//! Measured kernel-engine rows for the monomorphized reduction loops.
//!
//! The seed runtime reduced tensors through the dynamic path — one
//! `Tensor::get`/`Tensor::set` round trip plus a [`ReduceOp`] dispatch
//! per element. The kernel engine in `coconet_tensor::kernels` replaces
//! that with monomorphic per-op inner loops (`reduce_f32_serial`) and a
//! persistent worker pool above the parallel threshold (`reduce_f32`).
//! This module times all three on the acceptance-size buffer and
//! reports effective memory throughput, the `kernel_throughput`
//! trajectory row CI gates on.

use std::time::Instant;

use coconet_tensor::kernels::{pool_width, reduce_f32, reduce_f32_serial};
use coconet_tensor::{DType, ReduceOp, Tensor};

/// Elements of the benchmarked reduction: 2^24 — the acceptance size —
/// in release builds, which produce every committed
/// `BENCH_coconet.json`. Debug builds (the unit-test suite) shrink to
/// 2^18 so `cargo test` does not spend its time in the deliberately
/// slow per-element dispatch baseline.
pub const KB_ELEMS: usize = if cfg!(debug_assertions) {
    1 << 18
} else {
    1 << 24
};

/// The speedup floor the `kernel_throughput` gate enforces in release
/// builds: the monomorphized engine must beat the per-element dispatch
/// baseline by at least 2x (the acceptance criterion). Debug builds
/// relax the floor to "strictly faster" — unoptimized slice loops keep
/// bounds checks, so the debug margin is real but narrower, and the
/// committed gate always runs under `--release`.
pub const KERNEL_MIN_SPEEDUP: f64 = if cfg!(debug_assertions) { 1.05 } else { 2.0 };

/// Cap on the gated speedup, mirroring
/// [`GATED_SPEEDUP_CAP`](crate::zerocopy::GATED_SPEEDUP_CAP): the raw
/// dispatch/engine ratio is a cross-machine wall-clock comparison too
/// volatile for a 10 % regression gate, while any real engine
/// regression collapses it toward 1x. Every healthy release run
/// measures well above 5x, so the committed baseline pins at exactly
/// 5x and stays machine-independent.
pub const KERNEL_SPEEDUP_CAP: f64 = 5.0;

/// One kernel-engine measurement: wall-clocks of the three reduction
/// paths over the same buffers.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Elements reduced per pass.
    pub elems: usize,
    /// Per-element dispatch (seed path) wall-clock, seconds — fastest
    /// of the iterations.
    pub dispatch_s: f64,
    /// Monomorphic serial loop wall-clock, seconds.
    pub mono_s: f64,
    /// Worker-pool parallel loop wall-clock, seconds.
    pub parallel_s: f64,
    /// Worker threads the pool ran (1 on a single-core host — the
    /// caller runs its share inline).
    pub workers: usize,
}

impl KernelRow {
    /// The engine's best wall-clock (serial or parallel, whichever the
    /// host favors — on a single core the pool adds only handoff).
    pub fn best_engine_s(&self) -> f64 {
        self.mono_s.min(self.parallel_s)
    }

    /// Dispatch-baseline over best-engine speedup.
    pub fn speedup(&self) -> f64 {
        self.dispatch_s / self.best_engine_s()
    }

    /// Effective memory throughput of a pass at `seconds`, GB/s: two
    /// operand reads plus one result write of F32 per element.
    pub fn throughput_gb_s(&self, seconds: f64) -> f64 {
        (self.elems * 3 * DType::F32.size_bytes()) as f64 / seconds / 1e9
    }

    /// Violations of the engine contract (empty when the monomorphized
    /// loops beat the dispatch baseline by the gate floor).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.speedup() < KERNEL_MIN_SPEEDUP {
            v.push(format!(
                "kernel engine speedup {:.2}x is below the {KERNEL_MIN_SPEEDUP}x floor \
                 (dispatch {:.3e}s, mono {:.3e}s, parallel {:.3e}s)",
                self.speedup(),
                self.dispatch_s,
                self.mono_s,
                self.parallel_s
            ));
        }
        v
    }
}

/// Times `iters` passes of each reduction path over fresh
/// `elems`-element F32 buffers, fastest kept, and spot-checks every
/// pass so no path can skip the work.
pub fn kernel_microbench(elems: usize, iters: usize) -> KernelRow {
    let a: Vec<f32> = (0..elems).map(|i| (i % 97) as f32).collect();
    let b: Vec<f32> = (0..elems).map(|i| (i % 89) as f32 + 1.0).collect();
    let want = |i: usize| (i % 97) as f32 + ((i % 89) as f32 + 1.0);

    // Seed path: Tensor get/set plus a ReduceOp dispatch per element.
    let inc = Tensor::from_fn([elems], DType::F32, |i| b[i]);
    let mut dispatch_s = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let mut acc = Tensor::from_fn([elems], DType::F32, |i| a[i]);
        let start = Instant::now();
        for i in 0..elems {
            acc.set(i, ReduceOp::Sum.apply(acc.get(i), inc.get(i)));
        }
        dispatch_s = dispatch_s.min(start.elapsed().as_secs_f64());
        assert_eq!(acc.get(7), want(7));
    }

    let mut mono_s = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let mut acc = a.clone();
        let start = Instant::now();
        reduce_f32_serial(&mut acc, &b, ReduceOp::Sum);
        mono_s = mono_s.min(start.elapsed().as_secs_f64());
        assert_eq!(acc[7], want(7));
    }

    let mut parallel_s = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let mut acc = a.clone();
        let start = Instant::now();
        reduce_f32(&mut acc, &b, ReduceOp::Sum);
        parallel_s = parallel_s.min(start.elapsed().as_secs_f64());
        assert_eq!(acc[7], want(7));
    }

    KernelRow {
        elems,
        dispatch_s,
        mono_s,
        parallel_s,
        workers: pool_width(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-size run: all three paths agree (the spot-checks inside
    /// the bench), the measured times are sane, and the engine clears
    /// the debug gate floor. The acceptance-size run lives in the
    /// trajectory, measured under `--release`.
    #[test]
    fn kernel_paths_agree_and_engine_wins() {
        let row = kernel_microbench(1 << 16, 2);
        assert!(row.dispatch_s > 0.0 && row.mono_s > 0.0 && row.parallel_s > 0.0);
        assert!(row.workers >= 1);
        assert!(
            row.violations().is_empty(),
            "kernel gate: {:?}",
            row.violations()
        );
        assert!(row.throughput_gb_s(row.best_engine_s()) > 0.0);
    }
}
