//! The traced overlap experiment (`overlap_trace`): runs the
//! steady-state training loop through the [`StreamExecutor`] under the
//! barriered and the barrier-free schedule *with span recording on*,
//! and distills the traces into the three observability artifacts this
//! row gates:
//!
//! - the **overlap profile** — the fraction of collective in-flight
//!   time hidden under compute spans, per schedule. The barriered loop
//!   services every hop inside the end-of-iteration drain (no compute
//!   runs concurrently), while the priority stream keeps jobs in
//!   flight under the next iteration's forward — so the measured
//!   hidden fraction under [`CommSched::Priority`] must strictly
//!   exceed [`CommSched::Barriered`]'s, and that ordering is the gate;
//! - the **sim-vs-measured drift report** — the simulator's per-step
//!   predictions for the same plan (`bwd{l}` backward kernels,
//!   `grad{l}` gradient AllReduces) aligned against traced actuals
//!   (mean backward-span duration per layer; mean first-hop-to-
//!   completion in-flight time per layer's job stream). Every step
//!   must align — an unmatched label means the trace lost a step;
//! - the **well-formedness check** — both traces must have properly
//!   nested spans, per-thread monotone records, and every scheduler
//!   enqueue matched by a completion.
//!
//! The priority run's Chrome trace-event JSON (Perfetto-loadable) is
//! stashed for the `report` binary's `--trace-out` flag via
//! [`take_last_trace`].
//!
//! Tracing is process-global, so the experiment serializes behind a
//! gate and filters the snapshot down to the rank threads it spawned —
//! other traced work sharing the process (the test harness runs suites
//! concurrently) cannot perturb the analysis.

use std::collections::HashMap;
use std::sync::Mutex;

use coconet_compress::WireFormat;
use coconet_core::CommSched;
use coconet_runtime::{run_ranks, Group, StreamExecutor};
use coconet_sim::Simulator;
use coconet_tensor::Tensor;
use coconet_topology::MachineSpec;
use coconet_trace as trace;
use coconet_trace::drift::{drift_report, DriftReport};
use coconet_trace::{Event, EventKind, JOB_NONE};

use crate::steady::{
    apply_update, forward_pass, init_param, local_grad, steady_plan, STEADY_ITERS, STEADY_LAYERS,
    STEADY_MEASURED_ELEMS, STEADY_RANKS,
};

/// Serializes traced sections within the process: the enable flag is
/// global, and two interleaved experiments would see each other's
/// clears.
static ENABLE_GATE: Mutex<()> = Mutex::new(());

/// The most recent experiment's Chrome trace-event JSON (the priority
/// run), for `report --trace-out`.
static LAST_TRACE: Mutex<Option<String>> = Mutex::new(None);

/// Takes the Chrome trace JSON stashed by the last
/// [`overlap_trace_bench`] run, if any.
pub fn take_last_trace() -> Option<String> {
    LAST_TRACE.lock().expect("trace stash poisoned").take()
}

/// One schedule's traced run, distilled.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// Fraction of collective in-flight time hidden under compute.
    pub hidden_fraction: f64,
    /// Summed per-rank collective in-flight seconds.
    pub comm_busy_s: f64,
    /// Summed seconds of that time overlapped with compute spans.
    pub hidden_s: f64,
    /// Events recorded on the run's rank threads.
    pub events: usize,
    /// Global dropped-event count over the run's window.
    pub dropped: u64,
    /// The well-formedness verdict for the run's trace.
    pub wellformed: Result<(), String>,
}

/// The `overlap_trace` experiment outcome.
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// Total gradient elements per iteration.
    pub elems: usize,
    /// Rank threads.
    pub ranks: usize,
    /// Layers (= priority classes = job streams).
    pub layers: usize,
    /// Iterations per schedule.
    pub iters: u64,
    /// The barriered run's profile.
    pub barriered: TraceRun,
    /// The barrier-free run's profile.
    pub priority: TraceRun,
    /// Sim-vs-measured per-step drift, from the priority run.
    pub drift: DriftReport,
}

impl TraceRow {
    /// Violations of the trace gates (empty for a healthy run): the
    /// priority schedule must hide strictly more communication than
    /// the barriered one (and a nonzero amount), every simulated step
    /// must align with a measured one, and both traces must be well
    /// formed.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.priority.hidden_fraction <= self.barriered.hidden_fraction {
            v.push(format!(
                "priority schedule hid {:.4} of collective time, not above barriered {:.4}",
                self.priority.hidden_fraction, self.barriered.hidden_fraction
            ));
        }
        if self.priority.hidden_fraction <= 0.0 {
            v.push("priority schedule hid no collective time at all".into());
        }
        if self.drift.steps.is_empty() {
            v.push("drift report aligned no steps".into());
        }
        if !self.drift.unmatched.is_empty() {
            v.push(format!(
                "drift report left steps unmatched: {:?}",
                self.drift.unmatched
            ));
        }
        for (label, run) in [("barriered", &self.barriered), ("priority", &self.priority)] {
            if let Err(e) = &run.wellformed {
                v.push(format!("{label} trace is malformed: {e}"));
            }
            if run.events == 0 {
                v.push(format!("{label} run recorded no events"));
            }
        }
        v
    }
}

/// Runs the steady-state loop under `sched` with tracing on and
/// returns the events recorded by the spawned rank threads, plus the
/// global drop count over the window.
fn traced_run(sched: CommSched) -> (Vec<Event>, u64) {
    let layer_elems = STEADY_MEASURED_ELEMS / STEADY_LAYERS;
    trace::clear();
    trace::set_enabled(true);
    let rank_threads = run_ranks(STEADY_RANKS, move |comm| {
        let thread = trace::thread_id();
        let rank = comm.rank();
        let params: Vec<Tensor> = (0..STEADY_LAYERS)
            .map(|l| init_param(l, layer_elems))
            .collect();
        let mut exec = StreamExecutor::new(
            Group {
                start: 0,
                size: STEADY_RANKS,
            },
            params,
            sched,
            WireFormat::Dense,
        );
        let mut sink = 0.0f32;
        exec.run_iterations(
            &comm,
            STEADY_ITERS,
            |_, _, p| sink += forward_pass(p),
            move |l, iter, p| local_grad(l, iter, rank, p),
            |_, p, g| apply_update(p, g),
        );
        assert!(sink.is_finite());
        thread
    });
    trace::set_enabled(false);
    let dropped = trace::dropped_events();
    let events: Vec<Event> = trace::take_snapshot()
        .into_iter()
        .filter(|e| rank_threads.contains(&e.thread))
        .collect();
    trace::clear();
    (events, dropped)
}

/// Distills one traced run into its overlap profile.
fn profile(events: Vec<Event>, dropped: u64) -> (TraceRun, Vec<Event>) {
    let summary = trace::overlap::hidden_comm_fraction(&events);
    let run = TraceRun {
        hidden_fraction: summary.hidden_fraction(),
        comm_busy_s: summary.comm_busy_s,
        hidden_s: summary.hidden_s,
        events: events.len(),
        dropped,
        wellformed: trace::wellformed::check_well_formed(&events),
    };
    (run, events)
}

/// Derives the measured per-step timeline from a priority-run trace,
/// using the same labels as the simulator's steady-state plan:
///
/// - `bwd{l}` — the mean duration of layer `l`'s backward compute
///   spans (label `"grad"`, `a` = layer);
/// - `grad{l}` — the mean in-flight time of layer `l`'s gradient jobs
///   (first tagged hop to scheduler completion, per rank; job ids are
///   `iter * layers + layer`).
fn measured_steps(events: &[Event]) -> Vec<(String, f64)> {
    let layers = STEADY_LAYERS as u64;
    let mut bwd_ns = [(0u64, 0u64); STEADY_LAYERS];
    let mut first_hop: HashMap<(u32, u64), u64> = HashMap::new();
    let mut complete: HashMap<(u32, u64), u64> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::Compute if e.label == "grad" && (e.a as usize) < STEADY_LAYERS => {
                let (sum, n) = &mut bwd_ns[e.a as usize];
                *sum += e.dur_ns;
                *n += 1;
            }
            EventKind::Hop if e.a != JOB_NONE => {
                first_hop
                    .entry((e.rank, e.a))
                    .and_modify(|t| *t = (*t).min(e.ts_ns))
                    .or_insert(e.ts_ns);
            }
            EventKind::SchedComplete => {
                complete.insert((e.rank, e.a), e.ts_ns);
            }
            _ => {}
        }
    }
    let mut grad_ns = [(0u64, 0u64); STEADY_LAYERS];
    for ((rank, job), start) in &first_hop {
        if let Some(end) = complete.get(&(*rank, *job)) {
            let (sum, n) = &mut grad_ns[(job % layers) as usize];
            *sum += end.saturating_sub(*start);
            *n += 1;
        }
    }
    let mean_s = |(sum, n): (u64, u64)| {
        if n == 0 {
            None
        } else {
            Some(sum as f64 / n as f64 / 1e9)
        }
    };
    let mut out = Vec::new();
    for (l, &acc) in bwd_ns.iter().enumerate() {
        if let Some(s) = mean_s(acc) {
            out.push((format!("bwd{l}"), s));
        }
    }
    for (l, &acc) in grad_ns.iter().enumerate() {
        if let Some(s) = mean_s(acc) {
            out.push((format!("grad{l}"), s));
        }
    }
    out
}

/// Runs the traced overlap experiment: one barriered and one
/// barrier-free steady-state stream with recording on, profiled for
/// hidden-communication fraction, checked for well-formedness, and
/// aligned against the simulator's per-step predictions. Stashes the
/// priority run's Chrome trace JSON for [`take_last_trace`].
pub fn overlap_trace_bench() -> TraceRow {
    let _gate = ENABLE_GATE.lock().expect("trace gate poisoned");
    let (b_events, b_dropped) = traced_run(CommSched::Barriered);
    let (barriered, _) = profile(b_events, b_dropped);
    let (p_events, p_dropped) = traced_run(CommSched::Priority);
    let (priority, p_events) = profile(p_events, p_dropped);

    let sim = Simulator::new(MachineSpec::paper_testbed(), STEADY_RANKS, 1);
    let plan = steady_plan(STEADY_MEASURED_ELEMS, CommSched::Priority);
    let predicted: Vec<(String, f64)> = sim
        .time_plan(&plan)
        .steps
        .iter()
        .map(|s| (s.label.clone(), s.seconds))
        .collect();
    let drift = drift_report(&predicted, &measured_steps(&p_events));

    *LAST_TRACE.lock().expect("trace stash poisoned") =
        Some(trace::chrome::chrome_trace_json(&p_events));

    TraceRow {
        elems: STEADY_MEASURED_ELEMS,
        ranks: STEADY_RANKS,
        layers: STEADY_LAYERS,
        iters: STEADY_ITERS,
        barriered,
        priority,
        drift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The debug-size traced experiment upholds every gate: priority
    /// hides strictly more communication than barriered, all sixteen
    /// plan steps align with measured actuals, and both traces are
    /// well formed.
    #[test]
    fn traced_overlap_gates_hold() {
        let row = overlap_trace_bench();
        assert_eq!(row.violations(), Vec::<String>::new());
        assert!(row.priority.hidden_fraction > row.barriered.hidden_fraction);
        assert_eq!(row.drift.steps.len(), 2 * STEADY_LAYERS);
        assert!(row.drift.scale > 0.0);
        assert!(row.priority.comm_busy_s > 0.0);
        // The stashed Chrome export is parseable, non-trivial JSON.
        let json = take_last_trace().expect("trace stashed");
        let doc = crate::json::Json::parse(&json).expect("chrome export parses");
        let events = doc.get("traceEvents").expect("traceEvents present");
        assert!(matches!(events, crate::json::Json::Arr(a) if !a.is_empty()));
        assert!(take_last_trace().is_none(), "take_last_trace drains");
    }
}
