//! The steady-state experiment: a stream of data-parallel training
//! iterations under the barriered and the barrier-free schedule, at
//! the acceptance geometry (2^24 gradient elements over 8 ranks).
//!
//! Two kinds of rows feed the trajectory, the same split every other
//! experiment uses (simulated §6 rows + measured ledger rows):
//!
//! - `steady_state_stream` — the *costed* iterations/sec comparison.
//!   An 8-layer training iteration (per-layer backward kernel, then
//!   the trailing gradient AllReduces) is timed by the simulator under
//!   [`CommSched::Barriered`] (serial sum: communication on the
//!   critical path after the compute, every iteration) and under
//!   [`CommSched::Priority`] (the steady-state per-iteration time of
//!   the same plan run as a pipelined stream, where iteration *i*'s
//!   trailing collectives drain under iteration *i+1*'s compute).
//!   The comparison is pure cost-model arithmetic — deterministic and
//!   machine-independent, which is what lets CI gate the overlap win
//!   without a wall-clock cap.
//! - `ledger_priority_stream` — the *measured* witnesses. A real
//!   [`StreamExecutor`] run on rank threads against the classic
//!   blocking loop (forward, backward, then one blocking ring
//!   AllReduce per layer — the seed executor's schedule), asserting
//!   the three properties wall-clocks cannot prove on a shared CI
//!   box: final parameters bit-identical between schedules, every
//!   iteration's layer-0 gradient (produced *last* by backprop)
//!   synchronized *before* its last-layer gradient, and each priority
//!   class moving exactly its layer's analytic ring volume on the
//!   per-class [`BytesLedger`] counters.
//!   Violations of any witness are gate failures, the same treatment
//!   as a ledger or tuner inconsistency.
//!
//! The measured run still reports both wall-clocks for transparency,
//! but does not gate on them: rank threads time-share however many
//! cores the runner has (possibly one), so measured overlap is a
//! property of the machine, while the witnesses are properties of the
//! schedule.

use std::time::{Duration, Instant};

use coconet_compress::WireFormat;
use coconet_core::{
    CollAlgo, CollKind, CollectiveStep, CommConfig, CommSched, DType as CoreDType, ExecPlan,
    KernelStep, ReduceOp as CoreReduceOp, Step,
};
use coconet_runtime::{
    ring_all_reduce, ring_all_reduce_wire_bytes, run_ranks, BytesLedger, Group, StreamExecutor,
    PRIORITY_CLASSES,
};
use coconet_sim::Simulator;
use coconet_tensor::{DType, ReduceOp, Tensor};
use coconet_topology::MachineSpec;

/// Total gradient elements per iteration, across all layers: 2^24 —
/// the acceptance size — in release builds (the source of every
/// committed `BENCH_coconet.json`); 2^18 in debug builds so the unit
/// tests stay fast. The simulated row always uses the acceptance
/// size; only the measured witnesses run shrinks.
pub const STEADY_ELEMS: usize = 1 << 24;

/// Elements of the measured witnesses run.
pub const STEADY_MEASURED_ELEMS: usize = if cfg!(debug_assertions) {
    1 << 18
} else {
    1 << 24
};

/// Rank threads of the steady-state run.
pub const STEADY_RANKS: usize = 8;

/// Layers the gradient is split across. Eight layers map one-to-one
/// onto the ledger's [`PRIORITY_CLASSES`], so every layer's stream is
/// metered by its own counter.
pub const STEADY_LAYERS: usize = 8;

/// Iterations of the measured witnesses run.
pub const STEADY_ITERS: u64 = if cfg!(debug_assertions) { 4 } else { 10 };

/// The simulated steady-state comparison: per-iteration seconds of
/// the 8-layer training plan under each schedule, at the acceptance
/// geometry. `barriered_s` is the serial sum; `streamed_s` is the
/// pipelined steady-state per-iteration time. Both are exact
/// cost-model outputs.
#[derive(Clone, Copy, Debug)]
pub struct SteadySim {
    /// Barriered per-iteration time, seconds.
    pub barriered_s: f64,
    /// Barrier-free steady-state per-iteration time, seconds.
    pub streamed_s: f64,
}

impl SteadySim {
    /// Barriered over barrier-free speedup.
    pub fn speedup(&self) -> f64 {
        self.barriered_s / self.streamed_s
    }

    /// Barriered iterations per second.
    pub fn barriered_iters_per_sec(&self) -> f64 {
        1.0 / self.barriered_s
    }

    /// Barrier-free iterations per second.
    pub fn streamed_iters_per_sec(&self) -> f64 {
        1.0 / self.streamed_s
    }
}

/// Costs one training iteration — per-layer backward kernels, then
/// the trailing gradient AllReduces in backprop order — under both
/// schedules on the paper testbed at the acceptance geometry.
///
/// The kernels are sized so one iteration's compute is comparable to
/// its communication (the regime the paper's workloads occupy, and
/// where cross-iteration overlap pays most); the gradient volume is
/// exactly [`STEADY_ELEMS`] F32 elements split across
/// [`STEADY_LAYERS`] AllReduces over [`STEADY_RANKS`] ranks.
pub fn steady_state_sim() -> SteadySim {
    let sim = Simulator::new(MachineSpec::paper_testbed(), STEADY_RANKS, 1);
    let time = |sched: CommSched| sim.time_plan(&steady_plan(STEADY_ELEMS, sched)).total;
    SteadySim {
        barriered_s: time(CommSched::Barriered),
        streamed_s: time(CommSched::Priority),
    }
}

/// Builds the steady-state training plan — [`STEADY_LAYERS`] per-layer
/// backward kernels (`bwd{l}`), then the trailing gradient AllReduces
/// in backprop order (`grad{l}`) — over `elems` total gradient
/// elements, under the given communication schedule. Shared by the
/// costed comparison above and the drift half of the trace experiment
/// (`tracebench`), which aligns these step labels against measured
/// per-step times.
pub(crate) fn steady_plan(elems: usize, sched: CommSched) -> ExecPlan {
    let layer_elems = elems / STEADY_LAYERS;
    let layer_bytes = (layer_elems * 4) as u64;
    let mut steps = Vec::new();
    for l in 0..STEADY_LAYERS {
        steps.push(Step::Kernel(KernelStep {
            label: format!("bwd{l}"),
            // Backward of one layer: read activations + weights, write
            // activation gradients + the weight gradient.
            bytes_read: 8 * layer_bytes,
            bytes_written: 5 * layer_bytes,
            flops: 64 * layer_elems as u64,
            n_ops: 2,
        }));
    }
    for l in (0..STEADY_LAYERS).rev() {
        steps.push(Step::Collective(CollectiveStep {
            label: format!("grad{l}"),
            kind: CollKind::AllReduce,
            op: CoreReduceOp::Sum,
            algo: CollAlgo::Ring,
            elems: layer_elems as u64,
            dtype: CoreDType::F32,
            scattered: None,
        }));
    }
    let mut plan = ExecPlan {
        name: "steady".into(),
        steps,
        config: CommConfig::default().with_sched(sched),
    };
    plan.set_config(plan.config);
    plan
}

/// One measured steady-state run: both wall-clocks plus rank 0's
/// barrier-free witnesses.
#[derive(Clone, Debug)]
pub struct SteadyRow {
    /// Total gradient elements per iteration.
    pub elems: usize,
    /// Ranks participating.
    pub ranks: usize,
    /// Layers the gradient is split across.
    pub layers: usize,
    /// Iterations per schedule.
    pub iters: u64,
    /// Blocking-loop wall-clock, seconds — max across ranks.
    pub barriered_s: f64,
    /// Barrier-free wall-clock, seconds — max across ranks.
    pub streamed_s: f64,
    /// Rank 0's ledger over the barrier-free run (per-class counters).
    pub ledger: BytesLedger,
    /// Rank 0's job completion log over the barrier-free run
    /// (job id = `iter * layers + layer`).
    pub completion_log: Vec<u64>,
    /// Whether the two schedules produced bit-identical final
    /// parameters — the semantics-preservation half of the row.
    pub params_match: bool,
}

impl SteadyRow {
    /// The analytic per-rank wire volume of one layer's gradient
    /// stream over the whole run.
    pub fn class_analytic_bytes(&self) -> u64 {
        self.iters * ring_all_reduce_wire_bytes(self.elems / self.layers, self.ranks, DType::F32)
    }

    /// Total tagged bytes the barrier-free run sent per rank, summed
    /// over every priority class.
    pub fn class_bytes_total(&self) -> u64 {
        self.ledger.class_bytes_sent.iter().sum()
    }

    /// Violations of the barrier-free witnesses (empty when the two
    /// schedules agree bit for bit, the scheduler provably reordered
    /// traffic into consumption order, and every priority class moved
    /// exactly its analytic volume).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.params_match {
            v.push("schedules diverged: barrier-free parameters differ from barriered".into());
        }
        // Every iteration's first-consumed gradient must synchronize
        // before its last-consumed one — the reordering the priority
        // queue exists for. Backprop produces them in the opposite
        // order, so an unscheduled fabric fails this immediately.
        let pos = |job: u64| self.completion_log.iter().position(|&j| j == job);
        for it in 0..self.iters {
            let first = it * self.layers as u64;
            let last = first + self.layers as u64 - 1;
            match (pos(first), pos(last)) {
                (Some(f), Some(l)) if f < l => {}
                (Some(f), Some(l)) => v.push(format!(
                    "iteration {it}: layer-0 gradient completed at {f}, after last layer at {l}"
                )),
                _ => v.push(format!("iteration {it}: completion log lost a job")),
            }
        }
        // Per-class accounting: each layer rides its own priority
        // class (layers == PRIORITY_CLASSES) and must move exactly the
        // analytic ring volume — no class starved, none double-sent.
        assert_eq!(self.layers, PRIORITY_CLASSES);
        let want = self.class_analytic_bytes();
        for (class, &got) in self.ledger.class_bytes_sent.iter().enumerate() {
            if got != want {
                v.push(format!(
                    "priority class {class} moved {got} bytes per rank, analytic volume is {want}"
                ));
            }
        }
        v
    }
}

/// Runs the measured witnesses experiment: [`STEADY_ITERS`] iterations
/// of an 8-layer synthetic data-parallel loop under each schedule,
/// fastest of `repeats` timings kept per schedule.
pub fn steady_state_bench(repeats: usize) -> SteadyRow {
    let mut barriered_s = f64::INFINITY;
    let mut streamed_s = f64::INFINITY;
    let mut ledger = BytesLedger::default();
    let mut completion_log = Vec::new();
    let mut params_match = true;
    for _ in 0..repeats.max(1) {
        let (bt, b_params, _, _) = timed_run(CommSched::Barriered);
        barriered_s = barriered_s.min(bt);
        let (st, s_params, l, log) = timed_run(CommSched::Priority);
        if st < streamed_s {
            streamed_s = st;
            ledger = l;
            completion_log = log;
        }
        // Semantics preservation: both runs are deterministic, so one
        // bitwise comparison per repeat suffices.
        params_match &= b_params.len() == s_params.len()
            && b_params
                .iter()
                .zip(&s_params)
                .all(|(b, s)| b.to_f32_vec() == s.to_f32_vec());
    }
    SteadyRow {
        elems: STEADY_MEASURED_ELEMS,
        ranks: STEADY_RANKS,
        layers: STEADY_LAYERS,
        iters: STEADY_ITERS,
        barriered_s,
        streamed_s,
        ledger,
        completion_log,
        params_match,
    }
}

/// The initial parameter of layer `l`.
pub(crate) fn init_param(l: usize, layer_elems: usize) -> Tensor {
    Tensor::from_fn([layer_elems], DType::F32, move |i| {
        ((l * 31 + i) % 97) as f32 * 0.01
    })
}

/// Forward: one read pass over the layer (activation statistics).
pub(crate) fn forward_pass(p: &Tensor) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..p.numel() {
        acc += p.get(i);
    }
    acc
}

/// Backward: one write pass producing the local gradient, rank- and
/// iteration-dependent.
pub(crate) fn local_grad(l: usize, iter: u64, rank: usize, p: &Tensor) -> Tensor {
    let scale = 1e-4 * (l + 1) as f32 + 1e-5 * (rank + 1) as f32;
    let shift = 1e-3 * iter as f32;
    Tensor::from_fn([p.numel()], DType::F32, move |i| p.get(i) * scale + shift)
}

/// Optimizer: one fused axpy pass.
pub(crate) fn apply_update(p: &mut Tensor, g: &Tensor) {
    let lr = 1e-3f32;
    let step = Tensor::from_fn([p.numel()], DType::F32, |i| p.get(i) - lr * g.get(i));
    *p = step;
}

/// One timed stream of [`STEADY_ITERS`] iterations over fresh rank
/// threads; returns the slowest rank's wall-clock plus rank 0's
/// final parameters, ledger, and completion log.
///
/// The two schedules run the same arithmetic through different
/// machinery, exactly the before/after of the refactor:
///
/// - `Barriered` is the classic loop the seed executor ran: forward,
///   backward, then a *blocking* ring AllReduce per layer at the
///   iteration's end. One collective at a time is in flight — the
///   global barrier in its usual disguise.
/// - `Priority` is the [`StreamExecutor`]: all layers' gradients in
///   flight at once, serviced in consumption order at every kernel
///   boundary, next iteration gated per-parameter by ready-epoch.
fn timed_run(sched: CommSched) -> (f64, Vec<Tensor>, BytesLedger, Vec<u64>) {
    let layer_elems = STEADY_MEASURED_ELEMS / STEADY_LAYERS;
    let results = run_ranks(STEADY_RANKS, move |comm| {
        let group = Group {
            start: 0,
            size: STEADY_RANKS,
        };
        let rank = comm.rank();
        let params: Vec<Tensor> = (0..STEADY_LAYERS)
            .map(|l| init_param(l, layer_elems))
            .collect();
        comm.reset_ledger();
        // Keep the forward's reduction alive so the compute cannot be
        // optimized away.
        let mut sink = 0.0f32;
        let start;
        let (final_params, log) = if sched == CommSched::Barriered {
            let mut params = params;
            start = Instant::now();
            for iter in 0..STEADY_ITERS {
                for p in &params {
                    sink += forward_pass(p);
                }
                let mut grads: Vec<Option<Tensor>> = vec![None; STEADY_LAYERS];
                for l in (0..STEADY_LAYERS).rev() {
                    grads[l] = Some(local_grad(l, iter, rank, &params[l]));
                }
                // The barrier: every gradient synchronized by a
                // blocking collective before the next forward.
                for (l, g) in grads.into_iter().enumerate() {
                    let reduced = ring_all_reduce(
                        &comm,
                        group,
                        &g.expect("backward produced it"),
                        ReduceOp::Sum,
                    );
                    apply_update(&mut params[l], &reduced);
                }
            }
            (params, Vec::new())
        } else {
            let mut exec = StreamExecutor::new(group, params, sched, WireFormat::Dense);
            start = Instant::now();
            exec.run_iterations(
                &comm,
                STEADY_ITERS,
                |_, _, p| sink += forward_pass(p),
                move |l, iter, p| local_grad(l, iter, rank, p),
                |_, p, g| apply_update(p, g),
            );
            (exec.params(), exec.completion_log().to_vec())
        };
        let wall = start.elapsed();
        assert!(sink.is_finite());
        (wall, final_params, comm.ledger(), log)
    });
    let wall = results
        .iter()
        .map(|(t, ..)| *t)
        .max()
        .unwrap_or(Duration::ZERO);
    let (_, params, ledger, log) = results.into_iter().next().expect("rank 0 ran");
    (wall.as_secs_f64(), params, ledger, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The costed comparison at the acceptance geometry: barrier-free
    /// iterations/sec beats the barriered loop, and never beats the
    /// busier resource's floor (the sim's admissibility invariant).
    #[test]
    fn simulated_stream_beats_barriered() {
        let sim = steady_state_sim();
        assert!(
            sim.speedup() > 1.0,
            "stream {} !> barrier {}",
            sim.streamed_iters_per_sec(),
            sim.barriered_iters_per_sec()
        );
        // The pipelined time can halve the serial sum at best.
        assert!(sim.speedup() <= 2.0 + 1e-9, "speedup {}", sim.speedup());
    }

    /// The debug-size measured run: bit-identical parameters, the
    /// completion log shows consumption-order synchronization, and
    /// every priority class moved exactly its analytic volume.
    #[test]
    fn steady_state_witnesses_hold() {
        let row = steady_state_bench(1);
        assert_eq!(row.violations(), Vec::<String>::new());
        assert_eq!(
            row.completion_log.len() as u64,
            row.iters * row.layers as u64,
            "every job completes exactly once"
        );
        assert_eq!(
            row.class_bytes_total(),
            row.class_analytic_bytes() * row.layers as u64
        );
        assert!(row.barriered_s > 0.0 && row.streamed_s > 0.0);
    }
}
