//! Measured (not simulated) in-network aggregation experiment.
//!
//! Executes the runtime's [`switch_all_reduce`] — the emulated
//! programmable-switch collective — on real rank threads and checks
//! its headline property against the [`BytesLedger`]: every worker
//! moves exactly `2·n` quantization words (`n·4` bytes up to the
//! switch, `n·4` bytes multicast back) **independent of the worker
//! count**. The run is repeated at a small and at the acceptance
//! group size over the same tensor so the constancy is witnessed, not
//! just derived from the formula; the switch dataplane's own traffic
//! (`k·n·4` in each direction) is attributed to the separate switch
//! counters and must stay off every worker's books.
//!
//! [`BytesLedger`]: coconet_runtime::BytesLedger

use coconet_runtime::{
    run_ranks, switch_all_reduce, switch_all_reduce_wire_bytes, BytesLedger, Group,
};
use coconet_tensor::{DType, ReduceOp, Tensor};

/// Elements of the measured switch AllReduce: 2^24 — the acceptance
/// size — in release builds, which produce every committed
/// `BENCH_coconet.json`. Debug builds (the unit-test suite) shrink to
/// 2^18 so `cargo test` does not quantize 64 MiB per rank.
pub const SWITCH_ELEMS: usize = if cfg!(debug_assertions) {
    1 << 18
} else {
    1 << 24
};

/// Rank threads of the acceptance-geometry run.
pub const SWITCH_RANKS: usize = 8;

/// The contrast group size: same tensor, a quarter of the workers.
/// Per-worker volume must not move.
pub const SWITCH_RANKS_SMALL: usize = 2;

/// One measured switch-collective run: per-worker and dataplane
/// ledgers at both group sizes.
#[derive(Clone, Debug)]
pub struct SwitchLedgerRow {
    /// Elements reduced (identical at both group sizes).
    pub elems: usize,
    /// Workers in the acceptance-geometry run.
    pub ranks: usize,
    /// Per-rank ledgers of the acceptance-geometry run.
    pub ledgers: Vec<BytesLedger>,
    /// Per-rank ledgers of the [`SWITCH_RANKS_SMALL`] run.
    pub small_ledgers: Vec<BytesLedger>,
}

impl SwitchLedgerRow {
    /// The analytic per-worker round trip: `2·n` quantization words.
    pub fn analytic_bytes(&self) -> u64 {
        switch_all_reduce_wire_bytes(self.elems)
    }

    /// Measured per-worker volume (sent + received) of rank 0 in the
    /// acceptance run. Every rank must match it — enforced by
    /// [`violations`](Self::violations).
    pub fn per_worker_bytes(&self) -> u64 {
        self.ledgers[0].bytes_sent + self.ledgers[0].bytes_received
    }

    /// Measured per-worker volume of the small-group run.
    pub fn small_group_bytes(&self) -> u64 {
        self.small_ledgers[0].bytes_sent + self.small_ledgers[0].bytes_received
    }

    /// The switch dataplane's own traffic in the acceptance run
    /// (attributed to the hosting rank's switch counters, both
    /// directions).
    pub fn dataplane_bytes(&self) -> u64 {
        self.ledgers
            .iter()
            .map(|l| l.switch_bytes_sent + l.switch_bytes_recv)
            .sum()
    }

    /// Violations of the switch-volume invariants (empty when every
    /// worker moved exactly `2·n` words at both group sizes and the
    /// dataplane stayed off the worker books).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        let leg = self.analytic_bytes() / 2;
        for (ledgers, k) in [
            (&self.ledgers, self.ranks),
            (&self.small_ledgers, SWITCH_RANKS_SMALL),
        ] {
            for (rank, l) in ledgers.iter().enumerate() {
                if l.bytes_sent != leg || l.bytes_received != leg {
                    v.push(format!(
                        "switch AllReduce over {k} workers: rank {rank} moved \
                         {} up / {} down bytes, analytic leg is {leg}",
                        l.bytes_sent, l.bytes_received
                    ));
                }
            }
            // The dataplane lives on the group's first rank and turns
            // around exactly k legs in each direction.
            let dataplane: u64 = k as u64 * leg;
            if ledgers[0].switch_bytes_recv != dataplane
                || ledgers[0].switch_bytes_sent != dataplane
            {
                v.push(format!(
                    "switch dataplane over {k} workers aggregated {} / multicast {} \
                     bytes, expected {dataplane} each way",
                    ledgers[0].switch_bytes_recv, ledgers[0].switch_bytes_sent
                ));
            }
            for (rank, l) in ledgers.iter().enumerate().skip(1) {
                if l.switch_bytes_sent != 0 || l.switch_bytes_recv != 0 {
                    v.push(format!(
                        "rank {rank} recorded switch-dataplane traffic but rank 0 \
                         hosts the switch"
                    ));
                }
            }
        }
        if self.per_worker_bytes() != self.small_group_bytes() {
            v.push(format!(
                "per-worker volume moved with the group size: {} bytes at {} \
                 workers vs {} at {} — in-network aggregation must be constant in k",
                self.per_worker_bytes(),
                self.ranks,
                self.small_group_bytes(),
                SWITCH_RANKS_SMALL,
            ));
        }
        v
    }
}

/// Runs the measured switch collective at both group sizes and
/// collects every rank's ledger.
pub fn switch_ledger_bench(elems: usize) -> SwitchLedgerRow {
    SwitchLedgerRow {
        elems,
        ranks: SWITCH_RANKS,
        ledgers: metered_switch(elems, SWITCH_RANKS),
        small_ledgers: metered_switch(elems, SWITCH_RANKS_SMALL),
    }
}

/// One switch AllReduce over fresh rank threads; spot-checks the
/// reduction so the ledger cannot be satisfied by a no-op.
fn metered_switch(elems: usize, ranks: usize) -> Vec<BytesLedger> {
    run_ranks(ranks, move |comm| {
        let group = Group {
            start: 0,
            size: ranks,
        };
        let rank = comm.rank() as f32;
        // Values on the 1/16 fixed-point lattice, so the quantized
        // reduction is exact and the spot-check is strict.
        let input = Tensor::from_fn([elems], DType::F32, move |i| rank + (i % 13) as f32 / 16.0);
        comm.reset_ledger();
        let out = switch_all_reduce(&comm, group, &input, ReduceOp::Sum);
        assert_eq!(out.numel(), elems);
        let want: f32 = (0..ranks).map(|r| r as f32).sum();
        assert_eq!(out.get(0), want);
        comm.ledger()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small-size run: the invariants hold and the volume really is
    /// constant across group sizes (the acceptance-size run lives in
    /// the trajectory, measured under `--release`).
    #[test]
    fn switch_ledger_is_exact_and_constant_in_group_size() {
        let row = SwitchLedgerRow {
            elems: 1 << 12,
            ranks: SWITCH_RANKS,
            ledgers: metered_switch(1 << 12, SWITCH_RANKS),
            small_ledgers: metered_switch(1 << 12, SWITCH_RANKS_SMALL),
        };
        assert_eq!(row.violations(), Vec::<String>::new());
        assert_eq!(row.per_worker_bytes(), row.analytic_bytes());
        assert_eq!(row.per_worker_bytes(), (1u64 << 12) * 2 * 4);
        // Dataplane turns around k legs each way on the hosting rank.
        assert_eq!(
            row.dataplane_bytes(),
            SWITCH_RANKS as u64 * 2 * (1u64 << 12) * 4
        );
    }
}
