//! Plain-text table rendering for the benchmark harnesses.

use std::fmt::Write as _;

/// A printable table with a caption (one per paper figure/table).
#[derive(Clone, Debug)]
pub struct Report {
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Creates a report with the given caption and column headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Report {
        Report {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.caption);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Formats seconds as engineering-readable milliseconds/microseconds.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

/// Formats a speedup factor.
pub fn fmt_x(factor: f64) -> String {
    format!("{factor:.2}x")
}

/// Formats a byte count with binary prefixes (for the ledger rows,
/// whose baseline/coconet columns are bytes, not seconds).
pub fn fmt_bytes(bytes: f64) -> String {
    const KIB: f64 = 1024.0;
    if bytes >= KIB * KIB * KIB {
        format!("{:.2} GiB", bytes / (KIB * KIB * KIB))
    } else if bytes >= KIB * KIB {
        format!("{:.2} MiB", bytes / (KIB * KIB))
    } else if bytes >= KIB {
        format!("{:.2} KiB", bytes / KIB)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("Demo", &["name", "value"]);
        r.row(&["a".into(), "1".into()]);
        r.row(&["long-name".into(), "2.5".into()]);
        r.note("calibration note");
        let text = r.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("long-name"));
        assert!(text.contains("note: calibration note"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = Report::new("Demo", &["a", "b"]);
        r.row(&["only-one".into()]);
    }

    #[test]
    fn time_formats() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0125), "12.500 ms");
        assert_eq!(fmt_time(42e-6), "42.0 us");
        assert_eq!(fmt_x(1.345), "1.34x");
    }

    #[test]
    fn byte_formats() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2048.0), "2.00 KiB");
        assert_eq!(fmt_bytes(117_440_512.0), "112.00 MiB");
        assert_eq!(fmt_bytes(3.5 * 1024.0 * 1024.0 * 1024.0), "3.50 GiB");
    }
}
