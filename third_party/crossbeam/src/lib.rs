//! Offline stand-in for the `crossbeam` crate: the `channel` subset the
//! workspace uses, implemented over `std::sync::mpsc`. See
//! `third_party/README.md`.

/// Multi-producer channels (the `crossbeam-channel` subset in use).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails only if every sender was
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns a value if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_hangup() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
