//! Offline stand-in for the `crossbeam` crate: the `channel` and
//! `thread` subsets the workspace uses, implemented over
//! `std::sync::mpsc` and `std::thread::scope`. See
//! `third_party/README.md`.

/// Multi-producer multi-consumer channels (the `crossbeam-channel`
/// subset in use). Unlike `std::sync::mpsc`, receivers clone — a
/// shared work queue for a worker pool — so the implementation is a
/// mutex-guarded queue with a condvar, not a wrapped `mpsc`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel; clones share one queue
    /// (each value is delivered to exactly one receiver).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the hangup.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().expect("channel lock").receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails only if every sender was
        /// dropped and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel lock");
            }
        }

        /// Returns a value if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.state.lock().expect("channel lock");
            if let Some(value) = state.queue.pop_front() {
                Ok(value)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_hangup() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn multi_consumer_work_queue() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let sum = std::thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut sum = 0u64;
                            while let Ok(v) = rx.recv() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            });
            assert_eq!(sum, (0..100).sum::<u64>());
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}

/// Scoped threads (the `crossbeam-utils` `thread::scope` subset in
/// use), implemented over `std::thread::scope`.
pub mod thread {
    /// A scope handle passed to [`scope`]'s closure and to every
    /// spawned thread's closure, mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope.
        /// The closure receives the scope (crossbeam's signature), so
        /// workers can spawn further scoped threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result (`Err`
        /// if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning borrowing threads; all spawned
    /// threads are joined before this returns. Unlike real crossbeam —
    /// which returns `Err` with the panic payloads of unjoined
    /// panicked children — the `std` scope underneath re-raises such
    /// panics, so this always returns `Ok` (the matching subset for
    /// callers that `.unwrap()` the result, as this workspace does).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn borrows_and_joins() {
            let counter = AtomicUsize::new(0);
            let counter = &counter;
            let sum = super::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            i
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum::<usize>()
            })
            .unwrap();
            assert_eq!(sum, 6);
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let v = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(v, 7);
        }
    }
}
