//! Case execution: the deterministic RNG, per-case results, and the
//! loop driving the configured number of cases.

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// A `prop_assume!` did not hold; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// A failure carrying the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }
}

/// The result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator seeded per attempt.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator with the given seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runs `case` until `config.cases` cases pass, panicking on the first
/// failure. Rejected cases (`prop_assume!`) are retried with fresh
/// values, up to a cap.
///
/// # Panics
///
/// Panics when a case fails or when too many cases are rejected.
pub fn run(config: &ProptestConfig, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let mut attempt = 0u64;
    while passed < config.cases {
        // Fixed base seed: failures reproduce run-to-run by attempt number.
        let mut rng =
            TestRng::from_seed(0xC0C0_4E75_0000_5EED ^ attempt.wrapping_mul(0x2545_F491_4F6C_DD1D));
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 64 * u64::from(config.cases),
                    "too many prop_assume! rejections ({rejected}) after {passed} passing cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed (attempt {attempt}): {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run(&ProptestConfig::with_cases(10), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut total = 0u64;
        run(&ProptestConfig::with_cases(5), |rng| {
            total += 1;
            if rng.next_u64() % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failure_panics() {
        run(&ProptestConfig::default(), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
