//! Value-generation strategies: the `Strategy` trait plus the concrete
//! strategies this workspace uses (ranges, `Just`, `any`, tuples,
//! `prop::collection::vec`, mapped and boxed strategies, unions).

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` (generation only — no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f` applied to this strategy's
    /// values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy so differently-typed strategies with a
    /// common value type can be mixed (e.g. by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
    }
}

/// A type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A strategy that always produces a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (the engine behind
/// [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].gen_value(rng)
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over every value of a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t;
                // Rounding (f64 arithmetic, or the cast down to f32) can
                // land exactly on the exclusive upper bound; keep the
                // documented half-open contract.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.gen_value(rng);
        (0..n).map(|_| self.elem.gen_value(rng)).collect()
    }
}

/// Vectors whose elements come from `elem` and whose length lies in
/// `len`, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..17).gen_value(&mut r);
            assert!((3..17).contains(&v));
            let s = (-3i8..4).gen_value(&mut r);
            assert!((-3..4).contains(&s));
            let f = (0.5f64..2.0).gen_value(&mut r);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_just_union_vec_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0usize), (1usize..4).prop_map(|v| v * 100),];
        for _ in 0..50 {
            let v = s.gen_value(&mut r);
            assert!(v == 0 || (100..400).contains(&v));
        }
        let lens = vec(0u64..5, 2..6).gen_value(&mut r);
        assert!((2..6).contains(&lens.len()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<u64> = (0..16)
            .map(|_| any::<u64>().gen_value(&mut rng()))
            .collect();
        let b: Vec<u64> = (0..16)
            .map(|_| any::<u64>().gen_value(&mut rng()))
            .collect();
        assert_eq!(a, b);
    }
}
