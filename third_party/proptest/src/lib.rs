//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses —
//! `proptest!`, the `prop_assert*`/`prop_assume` macros, `Strategy`
//! with `prop_map`/`boxed`, `any`, `Just`, `prop_oneof!`, range and
//! tuple strategies, `prop::collection::vec`, and `ProptestConfig` —
//! over a deterministic splitmix64 generator. Failing cases report the
//! attempt number (re-runs are deterministic) but are not shrunk. See
//! `third_party/README.md`.

pub mod strategy;
pub mod test_runner;

/// Namespace mirror of `proptest::prop` (e.g. `prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, vec, Any, BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)+
                    (move || -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), __l, __r),
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks one of several strategies with the same value type,
/// mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
