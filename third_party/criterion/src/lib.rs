//! Offline stand-in for the `criterion` crate: just enough surface for
//! `harness = false` bench targets built around `bench_function` and
//! `Bencher::iter`. Reports mean/min wall-clock over a short fixed
//! budget instead of criterion's full statistical pipeline. See
//! `third_party/README.md`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Per-iteration timer handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly until the time budget is spent,
    /// recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call so lazy setup is off the clock.
        std_black_box(routine());
        let deadline = Instant::now() + self.budget;
        loop {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 1000 {
                break;
            }
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.budget,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!("{name:<40} mean {mean:>12.2?}   min {min:>12.2?}   ({n} samples)");
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran >= 2); // warmup + at least one timed sample
    }
}
