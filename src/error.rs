//! The workspace-wide error type: any layer's error converts into
//! [`Error`] with `?`, so application code composing the DSL, tensors,
//! topology, and the runtime needs no ad-hoc mapping.

use std::error::Error as StdError;
use std::fmt;

use coconet_core::CoreError;
use coconet_runtime::RuntimeError;
use coconet_tensor::TensorError;
use coconet_topology::GroupError;

/// Any error produced by a CoCoNet crate.
///
/// Each layer keeps its own precise error type (`CoreError`,
/// `TensorError`, `RuntimeError`, `GroupError`); this facade enum is the
/// common denominator for code that crosses layers. All four convert in
/// via [`From`], as does `RuntimeError`'s own nesting of core/tensor
/// errors, so a single `?` works anywhere:
///
/// ```
/// use coconet::core::{Binding, DType, Layout, Program, ReduceOp};
/// use coconet::runtime::{run_program, Inputs, RunOptions};
/// use coconet::tensor::Tensor;
///
/// fn sum_of_ones() -> Result<f32, coconet::Error> {
///     let mut p = Program::new("avg");
///     let g = p.input("g", DType::F32, ["N"], Layout::Local);
///     let s = p.all_reduce(ReduceOp::Sum, g)?; // CoreError
///     p.set_name(s, "sum")?;
///     p.set_io(&[g], &[s])?;
///     let binding = Binding::new(2).bind("N", 4);
///     let ones = Tensor::full([4], DType::F32, 1.0);
///     let inputs = Inputs::new().per_rank("g", vec![ones.clone(), ones]);
///     let out = run_program(&p, &binding, &inputs, RunOptions::default())?; // RuntimeError
///     Ok(out.global("sum")?.get(0))
/// }
/// assert_eq!(sum_of_ones().unwrap(), 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// DSL, transformation, or lowering error.
    Core(CoreError),
    /// Tensor construction or arithmetic error.
    Tensor(TensorError),
    /// Functional-runtime execution error.
    Runtime(RuntimeError),
    /// Process-group construction error.
    Group(GroupError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Tensor(e) => write!(f, "{e}"),
            Error::Runtime(e) => write!(f, "{e}"),
            Error::Group(e) => write!(f, "{e}"),
        }
    }
}

impl StdError for Error {
    // Transparent wrapping: Display already forwards to the inner
    // error, so source() skips it to avoid double-reporting in
    // chain-walking reporters.
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Core(e) => e.source(),
            Error::Tensor(e) => e.source(),
            Error::Runtime(e) => e.source(),
            Error::Group(e) => e.source(),
        }
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Error {
        Error::Core(e)
    }
}

impl From<TensorError> for Error {
    fn from(e: TensorError) -> Error {
        Error::Tensor(e)
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Error {
        Error::Runtime(e)
    }
}

impl From<GroupError> for Error {
    fn from(e: GroupError) -> Error {
        Error::Group(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source_chain() {
        let core: Error = CoreError::UnboundSymbol("B".into()).into();
        assert!(core.to_string().contains("`B`"));
        let tensor: Error = TensorError::ConcatMismatch.into();
        assert!(tensor.to_string().contains("concatenation"));
        let runtime: Error = RuntimeError::MissingInput("w".into()).into();
        assert!(matches!(runtime, Error::Runtime(_)));
        let group: Error = GroupError::Empty.into();
        assert!(group.to_string().contains("empty"));
        // Transparent wrapping: Display forwards to the innermost
        // message and source() skips the forwarding layers, so each
        // message appears exactly once in a walked chain.
        let nested: Error = RuntimeError::from(TensorError::ConcatMismatch).into();
        assert_eq!(nested.to_string(), TensorError::ConcatMismatch.to_string());
        assert!(nested.source().is_none());
    }
}
