//! # CoCoNet (Rust reproduction)
//!
//! Facade crate re-exporting the whole CoCoNet workspace: the DSL and
//! transformations ([`coconet_core`]), the tensor substrate
//! ([`coconet_tensor`]), the wire-compression subsystem
//! ([`coconet_compress`]), the cluster topology ([`coconet_topology`]),
//! the performance simulator ([`coconet_sim`]), the functional
//! distributed runtime ([`coconet_runtime`]), and the paper's workloads
//! ([`coconet_models`]).
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.

mod error;

pub use coconet_compress as compress;
pub use coconet_core as core;
pub use coconet_models as models;
pub use coconet_runtime as runtime;
pub use coconet_sim as sim;
pub use coconet_tensor as tensor;
pub use coconet_topology as topology;

pub use error::{Error, Result};
